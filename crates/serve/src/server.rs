//! The `factd` daemon: connection front end plus worker pool.
//!
//! ## Thread structure
//!
//! The connection **front end** comes in two flavors, selected by
//! [`ServerConfig::io_model`] (see `docs/SERVER.md` and DESIGN.md §12):
//!
//! - [`IoModel::Epoll`] (Linux default): a single event-loop thread (the
//!   one calling [`Server::run`]) multiplexes the nonblocking listener
//!   and every client socket through `epoll`. Each connection is a state
//!   machine — read buffer → newline framing → job dispatch, bounded
//!   outbox with partial-write resumption — and worker threads hand
//!   finished replies back through an `eventfd` wakeup. The loop
//!   enforces the connection lifecycle policy: a max-connections cap, an
//!   idle timeout, and slow-client disconnects when an outbox exceeds
//!   its cap.
//! - [`IoModel::Threads`] (portable fallback, `--io-model threads`): the
//!   accept loop spawns a thread per client; each reads requests,
//!   enqueues jobs, and waits (with the job's deadline) for the reply.
//!
//! Under either front end, on deadline expiry the connection raises the
//! job's cancellation flag; the search winds down at the next evaluation
//! boundary and replies with its best-so-far under `status:"timeout"`.
//!
//! - **worker pool**: [`ServerConfig::workers`] threads popping jobs
//!   from the bounded [`JobQueue`]. Each job runs inside a
//!   `catch_unwind` (a panicking evaluation fails only that job, with
//!   `error:"internal"`), and each worker runs under a supervisor that
//!   respawns it if a panic escapes the per-job catch.
//! - **stats logger** (optional): prints one counters line per interval.
//! - **snapshot thread** (with `--cache-file`): persists the shared
//!   evaluation cache atomically (tmp + rename) every
//!   [`ServerConfig::cache_snapshot_every_s`] seconds and at shutdown,
//!   so a restart warm-starts from the last good snapshot.
//!
//! ## Overload
//!
//! Admission is deadline-aware: the server keeps an EWMA of job service
//! time, and a job whose `timeout_ms` budget cannot be met at the
//! current queue depth is rejected immediately (`error:"busy"` with a
//! `retry_after_ms` hint) instead of queueing to certain death. At
//! capacity, a higher-priority job may evict the lowest-priority queued
//! job, whose client gets `error:"shed"` plus the same hint.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (also triggered by a `shutdown` request or
//! by SIGINT/SIGTERM in `factd`) closes the queue, raises every
//! in-flight job's cancellation flag, and wakes the accept loop; workers
//! drain, reply, and exit, and [`Server::run`] returns.

use crate::faults::{FaultPlan, FaultSpec, FaultyWriter};
use crate::job::{run_job, run_pareto_job, JobError};
use crate::json::{parse, Value};
use crate::protocol::{
    decode_request, error_reply, error_reply_with_retry, OptimizeRequest, Request,
};
use crate::queue::{JobQueue, PushOutcome};
use crate::stats::ServerStats;
use fact_core::EvalCache;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// How long after cancellation a job gets to wind down and deliver its
/// best-so-far before the connection gives up on it entirely.
pub(crate) const WIND_DOWN_GRACE: Duration = Duration::from_secs(10);

/// Logs one line to stderr, swallowing write errors. `eprintln!` panics
/// when stderr is a closed pipe (a dead log collector); a log line must
/// never take down the shutdown path or the logger thread with it.
macro_rules! log_stderr {
    ($($arg:tt)*) => {
        let _ = writeln!(io::stderr(), $($arg)*);
    };
}
pub(crate) use log_stderr;

/// Which connection front end the daemon runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoModel {
    /// A single event-loop thread multiplexing every connection through
    /// `epoll` (Linux only; the default there).
    Epoll,
    /// One thread per connection — the portable fallback, and the
    /// default off Linux.
    Threads,
}

impl Default for IoModel {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoModel::Epoll
        } else {
            IoModel::Threads
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "epoll" if cfg!(target_os = "linux") => Ok(IoModel::Epoll),
            "epoll" => Err("io model `epoll` requires Linux; use `threads`".into()),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!(
                "unknown io model `{other}` (expected `epoll` or `threads`)"
            )),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoModel::Epoll => "epoll",
            IoModel::Threads => "threads",
        })
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7348` (port 0 picks an ephemeral
    /// port; see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; beyond it, jobs are rejected (`busy`).
    pub queue_capacity: usize,
    /// Deadline for jobs that do not set their own `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Shard count for the shared evaluation cache (rounded up to a
    /// power of two).
    pub cache_shards: usize,
    /// Seconds between stats log lines; 0 disables the logger.
    pub stats_interval_s: u64,
    /// Print connection/shutdown/stats lines to stderr.
    pub log: bool,
    /// Persistent evaluation-cache snapshot path; `None` keeps the cache
    /// memory-only. Loaded (warm start) at bind, saved at shutdown.
    pub cache_file: Option<String>,
    /// Seconds between periodic cache snapshots; 0 saves only at
    /// shutdown. Ignored without `cache_file`.
    pub cache_snapshot_every_s: u64,
    /// Fault-injection plan for chaos testing; the default is inert.
    pub faults: FaultSpec,
    /// Connection front end (see [`IoModel`]).
    pub io_model: IoModel,
    /// Max simultaneously open client connections under the event loop;
    /// excess connections are accepted and immediately closed so the
    /// client sees a clean EOF instead of a hung SYN backlog slot.
    pub max_connections: usize,
    /// Seconds an event-loop connection may sit idle (no request in
    /// flight, nothing buffered) before it is closed; 0 disables.
    pub idle_timeout_s: u64,
    /// Per-connection outbox cap in bytes under the event loop. A client
    /// that stops reading while replies accumulate past this is
    /// disconnected (`slow_client_disconnects`) instead of being allowed
    /// to pin server memory.
    pub max_outbox_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map_or(2, |n| n.get());
        ServerConfig {
            addr: "127.0.0.1:7348".into(),
            workers,
            queue_capacity: 64,
            default_timeout_ms: 120_000,
            cache_shards: 16,
            stats_interval_s: 30,
            log: true,
            cache_file: None,
            cache_snapshot_every_s: 0,
            faults: FaultSpec::default(),
            io_model: IoModel::default(),
            max_connections: 4096,
            idle_timeout_s: 300,
            max_outbox_bytes: 1 << 20,
        }
    }
}

/// Where a finished job's outcome goes: the blocked connection thread
/// that submitted it (threads model) or the event loop's completion
/// queue (epoll model).
pub(crate) enum ReplyTo {
    /// The thread model's per-request channel; a dropped sender is how
    /// the waiting connection learns its worker died.
    Thread(mpsc::Sender<Result<Value, JobError>>),
    /// The event loop's completion queue; the drop behavior of the
    /// channel is reproduced by [`crate::event_loop::LoopReply`].
    #[cfg(target_os = "linux")]
    Loop(crate::event_loop::LoopReply),
}

impl ReplyTo {
    /// Delivers the outcome, best-effort — the client may already be
    /// gone, which no sender needs to know about.
    pub(crate) fn send(self, outcome: Result<Value, JobError>) {
        match self {
            ReplyTo::Thread(tx) => drop(tx.send(outcome)),
            #[cfg(target_os = "linux")]
            ReplyTo::Loop(reply) => reply.send(outcome),
        }
    }
}

/// One queued optimization job.
pub(crate) struct Job {
    req: OptimizeRequest,
    /// `true` routes through the Pareto-frontier pipeline instead of the
    /// single-objective search.
    pareto: bool,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    reply: ReplyTo,
}

/// The per-job counter deltas both job kinds fold into [`ServerStats`].
struct JobCounters {
    evaluated: u64,
    full_reschedules: u64,
    block_spliced: u64,
    sim_vectors: u64,
    sim_batches: u64,
    sim_engine_scalar: u64,
    sim_engine_batched: u64,
    lane_compactions: u64,
    neighborhood_batches: u64,
    mega_lanes: u64,
    mega_candidates: u64,
    stopped: bool,
}

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    queue: JobQueue<Job>,
    pub(crate) stats: ServerStats,
    cache: EvalCache,
    pub(crate) shutdown: AtomicBool,
    /// Cancellation flags of in-flight jobs, so shutdown can stop them.
    active: Mutex<Vec<Weak<AtomicBool>>>,
    addr: Mutex<Option<SocketAddr>>,
    pub(crate) faults: FaultPlan,
}

impl Shared {
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        if self.config.log {
            log_stderr!("factd: shutting down");
        }
        self.queue.close();
        for flag in self.active.lock().unwrap().iter() {
            if let Some(flag) = flag.upgrade() {
                flag.store(true, Ordering::SeqCst);
            }
        }
        // Unblock the accept loop with a self-connection.
        if let Some(addr) = *self.addr.lock().unwrap() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn register_active(&self, flag: &Arc<AtomicBool>) {
        let mut active = self.active.lock().unwrap();
        active.retain(|w| w.strong_count() > 0);
        active.push(Arc::downgrade(flag));
    }

    /// Backoff hint for `busy`/`shed` replies: the estimated time for
    /// one queue slot to free up at the current depth, clamped to a
    /// sane retry window.
    fn retry_hint_ms(&self) -> u64 {
        let avg = self.stats.avg_service_ms().max(100);
        let depth = self.queue.len() as u64;
        let workers = self.config.workers.max(1) as u64;
        (avg * (depth + 1) / workers).clamp(10, 60_000)
    }

    /// Saves the cache snapshot (atomic tmp + rename), then lets the
    /// fault plan corrupt it if a `corrupt` injection is drawn — chaos
    /// tests recover from the corruption on the next warm start.
    fn save_cache_snapshot(&self, path: &str) {
        match self.cache.save_snapshot(Path::new(path)) {
            Ok(entries) => {
                self.stats.note_snapshot();
                if self.faults.maybe_corrupt_snapshot(Path::new(path)) && self.config.log {
                    log_stderr!("factd: injected fault: snapshot {path} corrupted");
                }
                if self.config.log {
                    log_stderr!("factd: cache snapshot: {entries} entries to {path}");
                }
            }
            Err(e) => {
                if self.config.log {
                    log_stderr!("factd: cache snapshot to {path} failed: {e}");
                }
            }
        }
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
}

/// A clonable handle for stopping a running [`Server`] from another
/// thread (tests, signal monitors).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Initiates graceful shutdown; idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

impl Server {
    /// Binds the listener. The server does not accept or spawn anything
    /// until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = EvalCache::new(config.cache_shards.max(1));
        let faults = FaultPlan::new(config.faults.clone());
        if config.log && faults.is_armed() {
            log_stderr!("factd: FAULT INJECTION ARMED ({:?})", config.faults);
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            stats: ServerStats::new(),
            cache,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(Vec::new()),
            addr: Mutex::new(Some(addr)),
            faults,
            config,
        });
        // Warm start: load the last good cache snapshot, if any. A
        // corrupt tail is truncated away; a missing file is a cold
        // start, not an error.
        if let Some(path) = shared.config.cache_file.clone() {
            match shared.cache.load_snapshot(Path::new(&path)) {
                Ok(load) => {
                    shared
                        .stats
                        .cache_warm_entries
                        .store(load.entries as u64, Ordering::Relaxed);
                    if shared.config.log {
                        log_stderr!(
                            "factd: warm cache: {} entries from {path}{}",
                            load.entries,
                            if load.truncated {
                                " (corrupt tail truncated)"
                            } else {
                                ""
                            },
                        );
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    if shared.config.log {
                        log_stderr!("factd: cache snapshot {path} unreadable ({e}); cold start");
                    }
                }
            }
        }
        Ok(Server { shared, listener })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon on the calling thread until shutdown, then joins
    /// the worker pool and returns.
    pub fn run(self) -> io::Result<()> {
        let Server { shared, listener } = self;
        if shared.config.log {
            log_stderr!(
                "factd: listening on {} ({} io, {} workers, queue {}, default timeout {}ms)",
                listener.local_addr()?,
                shared.config.io_model,
                shared.config.workers,
                shared.config.queue_capacity,
                shared.config.default_timeout_ms,
            );
        }

        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Supervisor: a panic that escapes the per-job catch
                // (e.g. an injected worker kill) unwinds `worker_loop`;
                // re-entering it is the respawn. The queue and all
                // shared state live outside the loop, so nothing is
                // lost but the job the worker was holding — whose
                // client gets `internal` from its dropped reply sender.
                thread::spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))) {
                        Ok(()) => break, // queue closed: clean exit
                        Err(_) => {
                            shared
                                .stats
                                .workers_respawned
                                .fetch_add(1, Ordering::Relaxed);
                            if shared.config.log {
                                log_stderr!("factd: worker {i} died; respawning");
                            }
                        }
                    }
                })
            })
            .collect();
        let logger = (shared.config.stats_interval_s > 0).then(|| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || logger_loop(&shared))
        });
        let snapshotter = shared
            .config
            .cache_file
            .is_some()
            .then(|| {
                let shared = Arc::clone(&shared);
                (shared.config.cache_snapshot_every_s > 0)
                    .then(|| thread::spawn(move || snapshot_loop(&shared)))
            })
            .flatten();

        let front_end = run_front_end(&shared, listener);
        if front_end.is_err() {
            // A fatal listener error takes the daemon down gracefully:
            // workers drain and the error propagates to the caller.
            shared.begin_shutdown();
        }

        for w in workers {
            let _ = w.join();
        }
        if let Some(l) = logger {
            let _ = l.join();
        }
        if let Some(s) = snapshotter {
            let _ = s.join();
        }
        // Final snapshot after the workers have drained, so the file
        // holds everything this run learned.
        if let Some(path) = shared.config.cache_file.clone() {
            shared.save_cache_snapshot(&path);
        }
        if shared.config.log {
            log_stderr!("{}", shared.stats.log_line(&shared.cache));
        }
        front_end
    }
}

/// Dispatches to the configured connection front end.
#[cfg(target_os = "linux")]
fn run_front_end(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<()> {
    match shared.config.io_model {
        IoModel::Epoll => crate::event_loop::run_event_loop(shared, listener),
        IoModel::Threads => run_thread_model(shared, listener),
    }
}

/// Dispatches to the configured connection front end. Off Linux, epoll
/// is unavailable ([`IoModel::from_str`] rejects it), so every model
/// runs the portable thread-per-connection front end.
#[cfg(not(target_os = "linux"))]
fn run_front_end(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<()> {
    run_thread_model(shared, listener)
}

/// The thread-per-connection front end: accept, spawn, repeat until
/// shutdown (which wakes the blocking accept with a self-connection).
fn run_thread_model(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<()> {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let stats = &shared.stats;
                stats.connections_total.fetch_add(1, Ordering::Relaxed);
                stats.connections_open.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    handle_connection(&shared, stream);
                    shared
                        .stats
                        .connections_open
                        .fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Queued but never started; tell the waiting connection.
            job.reply.send(Err(JobError {
                code: "shutdown",
                message: "server shutting down".into(),
                retry_after_ms: None,
            }));
            continue;
        }
        shared.register_active(&job.cancel);
        // Injected worker kill: panics while holding the job, *outside*
        // the per-job catch below — the reply sender drops (the waiting
        // connection sees Disconnected → `internal`) and the unwind
        // escapes to the supervisor, which respawns this worker.
        shared.faults.maybe_kill_worker();
        if let Some(delay) = shared.faults.eval_delay() {
            thread::sleep(delay);
        }
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| execute_job(shared, &job))) {
            Ok(Ok((reply, c))) => {
                fold_counters(shared, &c);
                let counter = if c.stopped {
                    &shared.stats.timed_out
                } else {
                    &shared.stats.completed
                };
                counter.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .record_service_ms(started.elapsed().as_millis() as u64);
                shared
                    .stats
                    .record_latency_ms(job.submitted.elapsed().as_millis() as u64);
                job.reply.send(Ok(reply));
            }
            Ok(Err(e)) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(e));
            }
            Err(_) => {
                // The evaluation panicked (a bug or an injected fault).
                // The panic is contained to this job: its client gets a
                // documented `internal` error and the worker lives on.
                shared.stats.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(JobError {
                    code: "internal",
                    message: "candidate evaluation panicked; job aborted".into(),
                    retry_after_ms: None,
                }));
            }
        }
    }
}

/// Runs one job through its pipeline. Called inside the per-job
/// `catch_unwind`; a panic anywhere below fails only this job.
fn execute_job(shared: &Shared, job: &Job) -> Result<(Value, JobCounters), JobError> {
    shared.faults.maybe_eval_panic();
    // Route by job kind; both pipelines report the same counter set,
    // plus the per-kind job/point counters folded inline.
    if job.pareto {
        run_pareto_job(&job.req, &shared.cache, &job.cancel).map(|(reply, r)| {
            shared.stats.pareto_jobs.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .pareto_points
                .fetch_add(r.frontier.len() as u64, Ordering::Relaxed);
            (
                reply,
                JobCounters {
                    evaluated: r.evaluated as u64,
                    full_reschedules: r.full_reschedules as u64,
                    block_spliced: r.block_spliced as u64,
                    sim_vectors: r.sim_vectors,
                    sim_batches: r.sim_batches,
                    sim_engine_scalar: r.sim_engine_scalar,
                    sim_engine_batched: r.sim_engine_batched,
                    lane_compactions: r.lane_compactions,
                    neighborhood_batches: r.neighborhood_batches,
                    mega_lanes: r.mega_lanes,
                    mega_candidates: r.mega_candidates,
                    stopped: r.stopped,
                },
            )
        })
    } else {
        run_job(&job.req, &shared.cache, &job.cancel).map(|(reply, r)| {
            shared.stats.optimize_jobs.fetch_add(1, Ordering::Relaxed);
            (
                reply,
                JobCounters {
                    evaluated: r.evaluated as u64,
                    full_reschedules: r.full_reschedules as u64,
                    block_spliced: r.block_spliced as u64,
                    sim_vectors: r.sim_vectors,
                    sim_batches: r.sim_batches,
                    sim_engine_scalar: r.sim_engine_scalar,
                    sim_engine_batched: r.sim_engine_batched,
                    lane_compactions: r.lane_compactions,
                    neighborhood_batches: r.neighborhood_batches,
                    mega_lanes: r.mega_lanes,
                    mega_candidates: r.mega_candidates,
                    stopped: r.stopped,
                },
            )
        })
    }
}

/// Folds one job's counter deltas into the server totals.
fn fold_counters(shared: &Shared, c: &JobCounters) {
    let s = &shared.stats;
    s.evaluations.fetch_add(c.evaluated, Ordering::Relaxed);
    s.full_reschedules
        .fetch_add(c.full_reschedules, Ordering::Relaxed);
    s.block_spliced
        .fetch_add(c.block_spliced, Ordering::Relaxed);
    s.sim_vectors.fetch_add(c.sim_vectors, Ordering::Relaxed);
    s.sim_batches.fetch_add(c.sim_batches, Ordering::Relaxed);
    s.sim_engine_scalar
        .fetch_add(c.sim_engine_scalar, Ordering::Relaxed);
    s.sim_engine_batched
        .fetch_add(c.sim_engine_batched, Ordering::Relaxed);
    s.lane_compactions
        .fetch_add(c.lane_compactions, Ordering::Relaxed);
    s.neighborhood_batches
        .fetch_add(c.neighborhood_batches, Ordering::Relaxed);
    s.mega_lanes.fetch_add(c.mega_lanes, Ordering::Relaxed);
    s.mega_candidates
        .fetch_add(c.mega_candidates, Ordering::Relaxed);
}

/// Periodically persists the evaluation cache while the server runs.
fn snapshot_loop(shared: &Shared) {
    let interval = Duration::from_secs(shared.config.cache_snapshot_every_s);
    let tick = Duration::from_millis(200);
    let mut since_save = Duration::ZERO;
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(tick);
        since_save += tick;
        if since_save >= interval {
            since_save = Duration::ZERO;
            if let Some(path) = shared.config.cache_file.clone() {
                shared.save_cache_snapshot(&path);
            }
        }
    }
}

fn logger_loop(shared: &Shared) {
    let interval = Duration::from_secs(shared.config.stats_interval_s);
    let tick = Duration::from_millis(200);
    let mut since_line = Duration::ZERO;
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(tick);
        since_line += tick;
        if since_line >= interval {
            since_line = Duration::ZERO;
            if shared.config.log {
                log_stderr!("{}", shared.stats.log_line(&shared.cache));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    // The reply path goes through the fault plan's writer wrapper: with
    // `io` faults armed it produces Interrupted errors and short writes,
    // which `write_all` absorbs — proving the reply path survives
    // everything a real socket can throw at it.
    let mut writer = FaultyWriter::new(stream, &shared.faults);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown_after) = handle_line(shared, &line);
        if write_line(&mut writer, &reply).is_err() {
            break;
        }
        if shutdown_after {
            shared.begin_shutdown();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn write_line(writer: &mut impl Write, reply: &Value) -> io::Result<()> {
    let mut line = reply.to_json();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// What one request line asks the front end to do — the I/O-model-free
/// half of request handling, shared by the event loop and the
/// thread-per-connection path.
pub(crate) enum LineOutcome {
    /// An immediate reply (ping, stats, or a parse/decode error).
    Reply(Value),
    /// Write the reply, then begin graceful shutdown.
    ReplyThenShutdown(Value),
    /// An optimize/pareto job to admit.
    Submit {
        /// The decoded job request.
        req: Box<OptimizeRequest>,
        /// `true` for the Pareto-frontier pipeline.
        pareto: bool,
    },
}

/// Parses and classifies one request line.
pub(crate) fn classify_line(shared: &Shared, line: &str) -> LineOutcome {
    let value = match parse(line) {
        Ok(v) => v,
        Err(e) => return LineOutcome::Reply(error_reply("", "parse", &e.to_string())),
    };
    let request = match decode_request(&value) {
        Ok(r) => r,
        Err(e) => {
            let id = value.get("id").and_then(Value::as_str).unwrap_or("");
            return LineOutcome::Reply(error_reply(id, "request", &e.0));
        }
    };
    match request {
        Request::Ping => LineOutcome::Reply(Value::object([("type", Value::Str("pong".into()))])),
        Request::Stats => LineOutcome::Reply(shared.stats.snapshot(&shared.cache)),
        Request::Shutdown => {
            LineOutcome::ReplyThenShutdown(Value::object([("type", Value::Str("ok".into()))]))
        }
        Request::Optimize(req) => LineOutcome::Submit { req, pareto: false },
        Request::Pareto(req) => LineOutcome::Submit { req, pareto: true },
    }
}

/// The job's deadline budget, from its request or the server default.
pub(crate) fn job_timeout(shared: &Shared, req: &OptimizeRequest) -> Duration {
    Duration::from_millis(
        req.timeout_ms
            .unwrap_or(shared.config.default_timeout_ms)
            .max(1),
    )
}

/// Executes one request line; the bool asks the caller to begin
/// shutdown after writing the reply.
fn handle_line(shared: &Shared, line: &str) -> (Value, bool) {
    match classify_line(shared, line) {
        LineOutcome::Reply(v) => (v, false),
        LineOutcome::ReplyThenShutdown(v) => (v, true),
        LineOutcome::Submit { req, pareto } => (handle_optimize(shared, *req, pareto), false),
    }
}

/// The admission path both front ends share: deadline-aware busy
/// rejection, then [`JobQueue::push_or_shed`] with priority eviction.
/// `Ok` carries the admitted job's cancellation flag; `Err` carries the
/// reply to send right now (`busy`, `shed` victims are notified
/// internally, `shutdown`).
pub(crate) fn admit_job(
    shared: &Shared,
    req: OptimizeRequest,
    pareto: bool,
    timeout: Duration,
    reply: ReplyTo,
) -> Result<Arc<AtomicBool>, Value> {
    let id = req.id.clone();

    // Deadline-aware admission: if the expected queue wait (service-time
    // EWMA × depth ÷ workers) already exceeds this job's whole budget,
    // queueing it only wastes a slot — reject now with a backoff hint.
    // An idle server (EWMA 0 or empty queue) always admits.
    let avg_ms = shared.stats.avg_service_ms();
    let depth = shared.queue.len() as u64;
    let est_wait_ms = avg_ms * depth / shared.config.workers.max(1) as u64;
    if est_wait_ms > timeout.as_millis() as u64 {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(error_reply_with_retry(
            &id,
            "busy",
            &format!(
                "estimated queue wait {est_wait_ms}ms exceeds the job's {}ms budget",
                timeout.as_millis()
            ),
            Some(shared.retry_hint_ms()),
        ));
    }

    let cancel = Arc::new(AtomicBool::new(false));
    let job = Job {
        req,
        pareto,
        cancel: Arc::clone(&cancel),
        submitted: Instant::now(),
        reply,
    };
    match shared.queue.push_or_shed(job, |j| j.req.priority) {
        PushOutcome::Admitted => {}
        PushOutcome::Shed(victim) => {
            // This job displaced the lowest-priority queued job; the
            // victim's waiting connection gets `shed` + a backoff hint.
            shared.stats.jobs_shed.fetch_add(1, Ordering::Relaxed);
            victim.reply.send(Err(JobError {
                code: "shed",
                message: "shed from a full queue by a higher-priority job; retry later".into(),
                retry_after_ms: Some(shared.retry_hint_ms()),
            }));
        }
        PushOutcome::Full => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(error_reply_with_retry(
                &id,
                "busy",
                &format!(
                    "job queue full ({} pending); retry later",
                    shared.config.queue_capacity
                ),
                Some(shared.retry_hint_ms()),
            ));
        }
        PushOutcome::Closed => {
            return Err(error_reply(&id, "shutdown", "server shutting down"));
        }
    }
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    Ok(cancel)
}

fn handle_optimize(shared: &Shared, req: OptimizeRequest, pareto: bool) -> Value {
    let id = req.id.clone();
    let timeout = job_timeout(shared, &req);
    let (tx, rx) = mpsc::channel();
    let cancel = match admit_job(shared, req, pareto, timeout, ReplyTo::Thread(tx)) {
        Ok(cancel) => cancel,
        Err(reply) => return reply,
    };

    match rx.recv_timeout(timeout) {
        Ok(outcome) => finish(&id, outcome),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Deadline passed: cancel the job, then give it a grace
            // period to wind down and deliver its best-so-far (the
            // reply will carry `status:"timeout"`).
            cancel.store(true, Ordering::SeqCst);
            match rx.recv_timeout(WIND_DOWN_GRACE) {
                Ok(outcome) => finish(&id, outcome),
                Err(mpsc::RecvTimeoutError::Timeout) => error_reply(
                    &id,
                    "timeout",
                    &format!(
                        "job exceeded {}ms and did not wind down",
                        timeout.as_millis()
                    ),
                ),
                // The worker died holding the job (sender dropped) —
                // that is a worker failure, not a slow wind-down.
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    error_reply(&id, "internal", "worker exited before replying")
                }
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            error_reply(&id, "internal", "worker exited before replying")
        }
    }
}

/// Converts a worker outcome into the wire reply.
pub(crate) fn finish(id: &str, outcome: Result<Value, JobError>) -> Value {
    match outcome {
        Ok(reply) => reply,
        Err(e) => error_reply_with_retry(id, e.code, &e.message, e.retry_after_ms),
    }
}

/// Installs SIGINT/SIGTERM handlers that raise the returned flag; a
/// monitor thread in `factd` polls it and triggers graceful shutdown.
/// No-op (always-false flag) on non-Unix targets.
pub fn install_signal_flag() -> &'static AtomicBool {
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            // POSIX `signal(2)`; libc is always linked on unix targets.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (one atomic store),
        // and `signal` itself takes no pointers beyond the handler.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
    &SIGNALLED
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 4,
            default_timeout_ms: 60_000,
            cache_shards: 8,
            stats_interval_s: 0,
            log: false,
            cache_file: None,
            cache_snapshot_every_s: 0,
            faults: FaultSpec::default(),
            ..ServerConfig::default()
        }
    }

    fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, thread::JoinHandle<()>) {
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> Value {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        parse(reply.trim()).unwrap()
    }

    #[test]
    fn ping_stats_and_errors_over_the_wire() {
        let (addr, handle, join) = start(quiet_config());
        assert_eq!(
            roundtrip(addr, r#"{"type":"ping"}"#)
                .get("type")
                .unwrap()
                .as_str(),
            Some("pong")
        );
        let stats = roundtrip(addr, r#"{"type":"stats"}"#);
        assert_eq!(stats.get("jobs_submitted").unwrap().as_i64(), Some(0));
        let err = roundtrip(addr, "this is not json");
        assert_eq!(err.get("error").unwrap().as_str(), Some("parse"));
        let err = roundtrip(addr, r#"{"type":"levitate"}"#);
        assert_eq!(err.get("error").unwrap().as_str(), Some("request"));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let (addr, _handle, join) = start(quiet_config());
        let reply = roundtrip(addr, r#"{"type":"shutdown"}"#);
        assert_eq!(reply.get("type").unwrap().as_str(), Some("ok"));
        join.join().unwrap();
        // Further optimize requests are refused (connection fails or
        // the queue is closed) — the listener is gone.
        assert!(
            TcpStream::connect(addr).is_err() || {
                let r = roundtrip(addr, r#"{"type":"ping"}"#);
                r.get("type").is_some()
            }
        );
    }
}
