//! Executes one decoded optimization job against `fact-core`.
//!
//! Compiles the behavioral source, resolves the named allocation against
//! the §5 functional-unit library, generates the requested input traces,
//! and runs [`fact_core::optimize_with`] with the server's shared
//! [`EvalCache`] and the job's cancellation flag. The output is the
//! `result` reply [`Value`] ready for the wire.

use crate::json::Value;
use crate::protocol::OptimizeRequest;
use fact_core::{
    optimize_pareto_with, optimize_with, EvalCache, FactError, FactResult, OptimizeHooks,
    ParetoFactResult, TransformLibrary,
};
use fact_estim::{section5_library, Estimate};
use fact_ir::Function;
use fact_sched::{Allocation, FuLibrary, SelectionRules};
use fact_sim::{generate, TraceSet};
use std::sync::atomic::AtomicBool;

/// A job failure, as an `(error code, message)` pair for the error reply.
#[derive(Clone, Debug)]
pub struct JobError {
    /// Stable machine-readable code (`compile`, `alloc`, `schedule`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint for retryable overload codes (`busy`, `shed`);
    /// `None` for permanent errors.
    pub retry_after_ms: Option<u64>,
}

fn fail(code: &'static str, message: impl Into<String>) -> JobError {
    JobError {
        code,
        message: message.into(),
        retry_after_ms: None,
    }
}

/// Compiles the job's source, resolves its named allocation against the
/// §5 library, and generates its input traces — the shared front half of
/// both job kinds.
fn prepare(
    req: &OptimizeRequest,
) -> Result<(Function, FuLibrary, SelectionRules, Allocation, TraceSet), JobError> {
    let f = fact_lang::compile(&req.source).map_err(|e| fail("compile", e.to_string()))?;

    let (library, rules) = section5_library();
    let mut alloc = Allocation::new();
    for (name, count) in &req.alloc {
        let fu = library.by_name(name).ok_or_else(|| {
            let known: Vec<&str> = library.iter().map(|(_, s)| s.name.as_str()).collect();
            fail(
                "alloc",
                format!(
                    "unknown functional unit `{name}` (library units: {})",
                    known.join(", ")
                ),
            )
        })?;
        alloc.set(fu, *count);
    }

    let traces = generate(&req.traces.inputs, req.traces.n, req.traces.seed);
    Ok((f, library, rules, alloc, traces))
}

/// Runs the job to completion (or until `stop` is raised) and renders
/// the `result` reply. `evaluated` and `cache_hits` are also returned so
/// the server can fold them into its counters.
pub fn run_job(
    req: &OptimizeRequest,
    cache: &EvalCache,
    stop: &AtomicBool,
) -> Result<(Value, FactResult), JobError> {
    let (f, library, rules, alloc, traces) = prepare(req)?;
    let hooks = OptimizeHooks {
        cache: Some(cache),
        stop: Some(stop),
        timers: None,
    };
    let result = optimize_with(
        &f,
        &library,
        &rules,
        &alloc,
        &traces,
        &TransformLibrary::full(),
        &req.config,
        hooks,
    )
    .map_err(|e| match e {
        FactError::Schedule(e) => fail("schedule", e.to_string()),
        FactError::Analysis(m) => fail("analysis", m),
    })?;

    let reply = render_result(&req.id, &result);
    Ok((reply, result))
}

/// Runs a Pareto-frontier job: same inputs as [`run_job`], but through
/// [`fact_core::optimize_pareto_with`], replying with the full
/// `pareto_result` curve.
pub fn run_pareto_job(
    req: &OptimizeRequest,
    cache: &EvalCache,
    stop: &AtomicBool,
) -> Result<(Value, ParetoFactResult), JobError> {
    let (f, library, rules, alloc, traces) = prepare(req)?;
    let hooks = OptimizeHooks {
        cache: Some(cache),
        stop: Some(stop),
        timers: None,
    };
    let result = optimize_pareto_with(
        &f,
        &library,
        &rules,
        &alloc,
        &traces,
        &TransformLibrary::full(),
        &req.config,
        hooks,
    )
    .map_err(|e| match e {
        FactError::Schedule(e) => fail("schedule", e.to_string()),
        FactError::Analysis(m) => fail("analysis", m),
    })?;

    let reply = render_pareto_result(&req.id, &result);
    Ok((reply, result))
}

fn render_pareto_result(id: &str, r: &ParetoFactResult) -> Value {
    let frontier: Vec<Value> = r
        .frontier
        .iter()
        .map(|p| {
            Value::object([
                ("energy", Value::Float(p.energy)),
                ("latency_cycles", Value::Float(p.latency_cycles)),
                ("vdd", Value::Float(p.vdd)),
                ("power", Value::Float(p.power)),
                ("sched_cycles", Value::Float(p.sched_cycles)),
                (
                    "applied",
                    Value::Array(p.applied.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ])
        })
        .collect();
    Value::object([
        ("type", Value::Str("pareto_result".into())),
        ("id", Value::Str(id.into())),
        (
            "status",
            Value::Str(if r.stopped { "timeout" } else { "ok" }.into()),
        ),
        ("frontier", Value::Array(frontier)),
        ("archive_len", Value::Int(r.archive_len as i64)),
        ("evaluated", Value::Int(r.evaluated as i64)),
        ("cache_hits", Value::Int(r.cache_hits as i64)),
        ("blocks_optimized", Value::Int(r.blocks_optimized as i64)),
        ("stopped", Value::Bool(r.stopped)),
        ("baseline", render_estimate(&r.baseline)),
    ])
}

fn render_result(id: &str, r: &FactResult) -> Value {
    Value::object([
        ("type", Value::Str("result".into())),
        ("id", Value::Str(id.into())),
        (
            "status",
            Value::Str(if r.stopped { "timeout" } else { "ok" }.into()),
        ),
        ("best_ir", Value::Str(r.best.to_string())),
        (
            "applied",
            Value::Array(r.applied.iter().map(|s| Value::Str(s.clone())).collect()),
        ),
        ("evaluated", Value::Int(r.evaluated as i64)),
        ("cache_hits", Value::Int(r.cache_hits as i64)),
        ("blocks_optimized", Value::Int(r.blocks_optimized as i64)),
        ("stopped", Value::Bool(r.stopped)),
        ("baseline", render_estimate(&r.baseline)),
        ("optimized", render_estimate(&r.estimate)),
    ])
}

fn render_estimate(e: &Estimate) -> Value {
    Value::object([
        ("cycles", Value::Float(e.average_schedule_length)),
        ("energy_vdd2", Value::Float(e.energy_vdd2)),
        ("vdd", Value::Float(e.vdd)),
        ("power", Value::Float(e.power)),
        ("throughput", Value::Float(e.throughput)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::protocol::{decode_request, Request};

    fn decode(src: &str) -> OptimizeRequest {
        match decode_request(&parse(src).unwrap()).unwrap() {
            Request::Optimize(r) => *r,
            other => panic!("expected optimize, got {other:?}"),
        }
    }

    const JOB: &str = r#"{"type":"optimize","id":"t","source":
        "proc f(n, a, b) { var s = 0; var i = 0; while (i < n) { var t = s + 1; s = t * a + t * b; i = i + 1; } out s = s; }",
        "alloc":{"a1":2,"mt1":1,"cp1":1,"i1":2,"sb1":1},
        "traces":{"n":4,"seed":1,"inputs":{"n":{"const":10},"a":{"const":2},"b":{"const":3}}},
        "search":{"max_evaluations":60}}"#;

    #[test]
    fn runs_a_job_end_to_end() {
        let cache = EvalCache::default();
        let stop = AtomicBool::new(false);
        let (reply, result) = run_job(&decode(JOB), &cache, &stop).unwrap();
        assert_eq!(reply.get("type").unwrap().as_str(), Some("result"));
        assert_eq!(reply.get("id").unwrap().as_str(), Some("t"));
        assert_eq!(reply.get("status").unwrap().as_str(), Some("ok"));
        assert!(reply.get("evaluated").unwrap().as_i64().unwrap() > 0);
        let base = reply.get("baseline").unwrap();
        let opt = reply.get("optimized").unwrap();
        assert!(
            opt.get("cycles").unwrap().as_f64().unwrap()
                <= base.get("cycles").unwrap().as_f64().unwrap()
        );
        assert!(!result.stopped);
        // The reply is one line of valid JSON.
        let line = reply.to_json();
        assert!(!line.contains('\n'));
        assert_eq!(parse(&line).unwrap(), reply);
    }

    #[test]
    fn repeat_job_is_answered_from_cache() {
        let cache = EvalCache::default();
        let stop = AtomicBool::new(false);
        let req = decode(JOB);
        let (_, cold) = run_job(&req, &cache, &stop).unwrap();
        let (_, warm) = run_job(&req, &cache, &stop).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(warm.cache_hits, warm.evaluated);
        assert_eq!(warm.applied, cold.applied);
    }

    const PARETO_JOB: &str = r#"{"type":"pareto","id":"p","source":
        "proc f(n, a, b) { var s = 0; var i = 0; while (i < n) { var t = s + 1; s = t * a + t * b; i = i + 1; } out s = s; }",
        "alloc":{"a1":2,"mt1":1,"cp1":1,"i1":2,"sb1":1},
        "traces":{"n":4,"seed":1,"inputs":{"n":{"const":10},"a":{"const":2},"b":{"const":3}}},
        "search":{"max_evaluations":60}}"#;

    fn decode_pareto(src: &str) -> OptimizeRequest {
        match decode_request(&parse(src).unwrap()).unwrap() {
            Request::Pareto(r) => *r,
            other => panic!("expected pareto, got {other:?}"),
        }
    }

    #[test]
    fn runs_a_pareto_job_end_to_end() {
        let cache = EvalCache::default();
        let stop = AtomicBool::new(false);
        let (reply, result) = run_pareto_job(&decode_pareto(PARETO_JOB), &cache, &stop).unwrap();
        assert_eq!(reply.get("type").unwrap().as_str(), Some("pareto_result"));
        assert_eq!(reply.get("id").unwrap().as_str(), Some("p"));
        assert_eq!(reply.get("status").unwrap().as_str(), Some("ok"));
        let frontier = match reply.get("frontier").unwrap() {
            Value::Array(a) => a,
            other => panic!("frontier must be an array, got {other:?}"),
        };
        assert!(!frontier.is_empty());
        assert_eq!(frontier.len(), result.frontier.len());
        for p in frontier {
            assert!(p.get("energy").unwrap().as_f64().unwrap() > 0.0);
            assert!(p.get("latency_cycles").unwrap().as_f64().unwrap() > 0.0);
            let vdd = p.get("vdd").unwrap().as_f64().unwrap();
            assert!(vdd > 1.0 && vdd <= 5.0 + 1e-12);
        }
        // The reply is one line of valid JSON.
        let line = reply.to_json();
        assert!(!line.contains('\n'));
        assert_eq!(parse(&line).unwrap(), reply);
    }

    #[test]
    fn reports_compile_and_alloc_errors() {
        let cache = EvalCache::default();
        let stop = AtomicBool::new(false);
        let mut req = decode(JOB);
        req.source = "proc f( {".into();
        let e = run_job(&req, &cache, &stop).unwrap_err();
        assert_eq!(e.code, "compile");

        let mut req = decode(JOB);
        req.alloc.push(("warp9".into(), 1));
        let e = run_job(&req, &cache, &stop).unwrap_err();
        assert_eq!(e.code, "alloc");
        assert!(e.message.contains("warp9"));
        assert!(e.message.contains("a1"));
    }

    #[test]
    fn pre_raised_stop_flag_yields_stopped_result() {
        let cache = EvalCache::default();
        let stop = AtomicBool::new(true);
        let (reply, result) = run_job(&decode(JOB), &cache, &stop).unwrap();
        assert!(result.stopped);
        assert_eq!(reply.get("status").unwrap().as_str(), Some("timeout"));
    }
}
