//! Std-only Linux `epoll` wrapper for the event-driven connection front
//! end (DESIGN.md §12).
//!
//! The workspace has zero external dependencies, so the poller talks to
//! the kernel directly through the libc symbols that are always linked
//! on Linux targets (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) — the same idiom `install_signal_flag` uses for
//! `signal(2)`. Everything is **level-triggered**: readiness is reported
//! on every wait until the condition is consumed, which keeps the
//! event-loop state machine simple (no starvation bookkeeping for
//! edge-triggered wakeups).
//!
//! Two types:
//!
//! - [`Poller`]: one `epoll` instance. Register a file descriptor with a
//!   `u64` token and an [`Interest`]; [`Poller::wait`] fills a buffer of
//!   [`Event`]s, each carrying the token back.
//! - [`Waker`]: an `eventfd` that other threads write to unblock a
//!   [`Poller::wait`] — the handoff path worker threads use to tell the
//!   event loop a job reply is ready.

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// Linux ABI constants (asm-generic values; stable since 2.6).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI demands it
/// there); naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    // libc is always linked on Linux targets; these are the raw POSIX /
    // Linux entry points the std library itself builds on.
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// What readiness a registration asks for. Error/hangup conditions are
/// always reported by the kernel and surface via [`Event::is_error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Neither direction — only error/hangup events are delivered.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    events: u32,
}

impl Event {
    /// The fd is readable — including EOF/half-close, which a subsequent
    /// `read` reports as 0 bytes.
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0
    }

    /// The fd is writable.
    pub fn is_writable(&self) -> bool {
        self.events & EPOLLOUT != 0
    }

    /// The fd is in an error or hangup state; the owner should close it
    /// (after a final read drains whatever the kernel still holds).
    pub fn is_error(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }
}

/// One `epoll` instance.
pub struct Poller {
    epfd: c_int,
    /// Kernel-filled event buffer, reused across waits.
    buf: Vec<EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal and is checked before use.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![EpollEvent::default(); 1024],
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` lives across the call and is a valid
        // `epoll_event`; the kernel copies it before returning (DEL
        // ignores the pointer entirely). `fd` validity is the caller's
        // contract; an invalid fd is reported as EBADF, not UB.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's token/interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Harmless to call for an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Waits for readiness up to `timeout` (`None` blocks indefinitely)
    /// and returns the ready events. An interrupted wait (EINTR) returns
    /// an empty slice rather than an error.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<Vec<Event>> {
        let timeout_ms: c_int = match timeout {
            // Round up so a 0 < t < 1ms deadline does not busy-spin.
            Some(t) => {
                t.as_millis()
                    .min(i32::MAX as u128)
                    .max(u128::from(!t.is_zero() && t.as_millis() == 0)) as c_int
            }
            None => -1,
        };
        // SAFETY: `buf` is a live, properly sized allocation of
        // `EpollEvent`; the kernel writes at most `buf.len()` entries
        // and returns how many, which is bounds-checked below.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(Vec::new())
            } else {
                Err(e)
            };
        }
        let n = (n as usize).min(self.buf.len());
        Ok(self.buf[..n]
            .iter()
            .map(|ev| {
                // Copy the (possibly packed) fields by value; taking
                // references into a packed struct is undefined behavior.
                let events = ev.events;
                let data = ev.data;
                Event {
                    token: data,
                    events,
                }
            })
            .collect())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1 and is closed
        // exactly once (Drop runs once; the fd is never duplicated).
        unsafe { close(self.epfd) };
    }
}

/// An `eventfd`-backed wakeup channel: any thread calls [`Waker::wake`]
/// to make the owning [`Poller::wait`] return. Cheap (one 8-byte write),
/// coalescing (N wakes before a drain collapse into one readable event),
/// and safe to fire after the loop has exited (the write lands in the
/// eventfd counter and is never read — no error, no block, because the
/// counter saturates far above any realistic wake count).
pub struct Waker {
    fd: c_int,
}

impl Waker {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; a negative return is the
        // documented error signal and is checked before use.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with a [`Poller`] (readable interest).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Unblocks the poller. Infallible by design: the only failure modes
    /// are EAGAIN (counter saturated — the poller is already guaranteed
    /// to wake) and programmer error.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live u64 — exactly the eventfd
        // contract. The fd outlives the call (`&self` borrows the owner).
        unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Consumes pending wakeups so level-triggered polling goes quiet
    /// until the next [`Waker::wake`].
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reads 8 bytes into a live u64 — exactly the eventfd
        // contract for a nonblocking read; EAGAIN (nothing pending) is
        // the expected other outcome and needs no handling.
        unsafe { read(self.fd, (&mut count as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` was returned by eventfd and is closed exactly
        // once (Drop runs once; the fd is never duplicated).
        unsafe { close(self.fd) };
    }
}

// SAFETY: Waker is an owned file descriptor; eventfd reads/writes are
// atomic kernel operations, safe from any thread concurrently.
unsafe impl Send for Waker {}
// SAFETY: see Send — `wake`/`drain` take &self and are kernel-atomic.
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.raw_fd(), 7, Interest::READ).unwrap();

        // No wake: the wait times out empty.
        let t0 = Instant::now();
        let evs = poller.wait(Some(Duration::from_millis(30))).unwrap();
        assert!(evs.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));

        // Coalesced wakes: readable once, token intact.
        waker.wake();
        waker.wake();
        let evs = poller.wait(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].is_readable());

        // Drained: quiet again.
        waker.drain();
        let evs = poller.wait(Some(Duration::from_millis(20))).unwrap();
        assert!(evs.is_empty());
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd;
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let evs = poller.wait(Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 1 && e.is_readable()));
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.add(conn.as_raw_fd(), 2, Interest::READ).unwrap();

        client.write_all(b"hi").unwrap();
        let evs = poller.wait(Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 2 && e.is_readable()));

        // Writable interest on an idle socket fires immediately
        // (level-triggered: the send buffer is empty).
        poller
            .modify(
                conn.as_raw_fd(),
                2,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        let evs = poller.wait(Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 2 && e.is_writable()));

        poller.remove(conn.as_raw_fd()).unwrap();
        drop(client);
        let evs = poller.wait(Some(Duration::from_millis(30))).unwrap();
        assert!(
            evs.iter().all(|e| e.token != 2),
            "removed fd must stay silent"
        );
    }
}
