//! The `factd` wire protocol: newline-delimited JSON.
//!
//! Every request is one JSON object on one line; every reply is one JSON
//! object on one line. The `type` member selects the request kind:
//! `"ping"`, `"stats"`, `"shutdown"`, `"optimize"`, or `"pareto"`. See
//! `docs/SERVER.md` for the full schema with examples.
//!
//! This module only translates between [`Value`] trees and typed
//! requests; execution lives in [`crate::server`].

use crate::json::Value;
use fact_core::{FactConfig, Objective};
use fact_sim::InputSpec;

/// A decoded client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe; answered with `{"type":"pong"}`.
    Ping,
    /// Server counters; answered with a `stats` object.
    Stats,
    /// Graceful shutdown: drain the queue, stop accepting, exit.
    Shutdown,
    /// An optimization job.
    Optimize(Box<OptimizeRequest>),
    /// A Pareto-frontier job: same inputs as an optimization job, but the
    /// reply is the full energy × latency × Vdd tradeoff curve.
    Pareto(Box<OptimizeRequest>),
}

/// One optimization job: behavioral source + allocation + objective +
/// trace spec, with optional search/scheduler knobs.
#[derive(Clone, Debug)]
pub struct OptimizeRequest {
    /// Client-chosen id, echoed in the reply (defaults to `""`).
    pub id: String,
    /// Behavioral source text (the `proc … { … }` language).
    pub source: String,
    /// Functional-unit allocation, by library unit name (e.g. `"a1": 2`).
    pub alloc: Vec<(String, u32)>,
    /// Input trace generation: how many vectors, the generator seed, and
    /// a spec per input variable.
    pub traces: TracesSpec,
    /// Assembled run configuration (objective, scheduler, search knobs).
    pub config: FactConfig,
    /// Per-job wall-clock budget in milliseconds; `None` uses the
    /// server default.
    pub timeout_ms: Option<u64>,
    /// Scheduling priority (higher is more important, default 0). Under
    /// overload the server sheds the lowest-priority queued jobs first.
    pub priority: i64,
}

/// Trace-generation spec (mirrors `fact_sim::generate`).
#[derive(Clone, Debug)]
pub struct TracesSpec {
    /// Number of input vectors.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Per-variable distributions.
    pub inputs: Vec<(String, InputSpec)>,
}

/// A request that could not be decoded; the message is sent back to the
/// client in an `error` reply.
#[derive(Clone, Debug)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Decodes one request line (already JSON-parsed into a [`Value`]).
pub fn decode_request(v: &Value) -> Result<Request, ProtocolError> {
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string member `type`"))?;
    match ty {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "optimize" => Ok(Request::Optimize(Box::new(decode_optimize(v, false)?))),
        "pareto" => Ok(Request::Pareto(Box::new(decode_optimize(v, true)?))),
        other => Err(bad(format!(
            "unknown request type `{other}` (expected ping, stats, shutdown, optimize, or pareto)"
        ))),
    }
}

fn decode_optimize(v: &Value, pareto: bool) -> Result<OptimizeRequest, ProtocolError> {
    let id = match v.get("id") {
        None => String::new(),
        Some(Value::Str(s)) => s.clone(),
        Some(_) => return Err(bad("`id` must be a string")),
    };
    let source = v
        .get("source")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string member `source`"))?
        .to_string();

    let alloc_obj = v
        .get("alloc")
        .and_then(Value::as_object)
        .ok_or_else(|| bad("missing object member `alloc`"))?;
    let mut alloc = Vec::with_capacity(alloc_obj.len());
    for (name, count) in alloc_obj {
        let n = count
            .as_i64()
            .filter(|n| (0..=u32::MAX as i64).contains(n))
            .ok_or_else(|| bad(format!("alloc `{name}` must be a non-negative integer")))?;
        alloc.push((name.clone(), n as u32));
    }

    let traces = decode_traces(
        v.get("traces")
            .ok_or_else(|| bad("missing object member `traces`"))?,
    )?;

    let mut config = FactConfig::default();
    if pareto {
        // A `pareto` request is multi-objective by definition; a
        // contradictory scalar `objective` is a client error.
        match v.get("objective").and_then(Value::as_str) {
            None | Some("pareto") => config.objective = Objective::Pareto,
            Some(other) => {
                return Err(bad(format!(
                    "objective `{other}` conflicts with request type `pareto` \
                     (omit it or use `pareto`)"
                )))
            }
        }
        if let Some(cap) = v.get("archive_capacity") {
            config.pareto.archive_capacity = usize_member(cap, "archive_capacity")?.max(2);
        }
        if let Some(steps) = v.get("vdd_steps") {
            config.pareto.vdd_steps = usize_member(steps, "vdd_steps")?.max(1);
        }
    } else {
        match v.get("objective").and_then(Value::as_str) {
            None | Some("throughput") => config.objective = Objective::Throughput,
            Some("power") => config.objective = Objective::Power,
            Some(other) => {
                return Err(bad(format!(
                    "unknown objective `{other}` (expected `throughput` or `power`; \
                     for the full tradeoff curve use request type `pareto`)"
                )))
            }
        }
    }
    if let Some(clk) = v.get("clock_ns") {
        config.sched.clock_ns = clk
            .as_f64()
            .filter(|c| *c > 0.0)
            .ok_or_else(|| bad("`clock_ns` must be a positive number"))?;
    }
    if let Some(ce) = v.get("check_equivalence") {
        config.check_equivalence = ce
            .as_bool()
            .ok_or_else(|| bad("`check_equivalence` must be a boolean"))?;
    }
    if let Some(sb) = v.get("sim_batch") {
        config.sim_batch = sb
            .as_bool()
            .ok_or_else(|| bad("`sim_batch` must be a boolean"))?;
    }
    if let Some(mb) = v.get("max_blocks") {
        config.max_blocks = usize_member(mb, "max_blocks")?;
    }
    if let Some(s) = v.get("search") {
        let s = s
            .as_object()
            .ok_or_else(|| bad("`search` must be an object"))?;
        for (key, val) in s {
            match key.as_str() {
                "seed" => {
                    config.search.seed = val
                        .as_i64()
                        .ok_or_else(|| bad("`search.seed` must be an integer"))?
                        as u64
                }
                "max_moves" => config.search.max_moves = usize_member(val, "search.max_moves")?,
                "in_set_size" => {
                    config.search.in_set_size = usize_member(val, "search.in_set_size")?
                }
                "max_rounds" => config.search.max_rounds = usize_member(val, "search.max_rounds")?,
                "max_evaluations" => {
                    config.search.max_evaluations = usize_member(val, "search.max_evaluations")?
                }
                "threads" => config.search.threads = usize_member(val, "search.threads")?,
                other => return Err(bad(format!("unknown search knob `{other}`"))),
            }
        }
    }

    let timeout_ms = match v.get("timeout_ms") {
        None => None,
        Some(t) => Some(
            t.as_i64()
                .filter(|t| *t > 0)
                .ok_or_else(|| bad("`timeout_ms` must be a positive integer"))? as u64,
        ),
    };

    let priority = match v.get("priority") {
        None => 0,
        Some(p) => p
            .as_i64()
            .ok_or_else(|| bad("`priority` must be an integer"))?,
    };

    Ok(OptimizeRequest {
        id,
        source,
        alloc,
        traces,
        config,
        timeout_ms,
        priority,
    })
}

fn usize_member(v: &Value, name: &str) -> Result<usize, ProtocolError> {
    v.as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| bad(format!("`{name}` must be a non-negative integer")))
}

fn decode_traces(v: &Value) -> Result<TracesSpec, ProtocolError> {
    let n = usize_member(
        v.get("n").ok_or_else(|| bad("missing `traces.n`"))?,
        "traces.n",
    )?;
    if n == 0 {
        return Err(bad("`traces.n` must be at least 1"));
    }
    let seed = v
        .get("seed")
        .map(|s| {
            s.as_i64()
                .ok_or_else(|| bad("`traces.seed` must be an integer"))
        })
        .transpose()?
        .unwrap_or(1) as u64;
    let inputs_obj = v
        .get("inputs")
        .and_then(Value::as_object)
        .ok_or_else(|| bad("missing object member `traces.inputs`"))?;
    let mut inputs = Vec::with_capacity(inputs_obj.len());
    for (name, spec) in inputs_obj {
        inputs.push((name.clone(), decode_input_spec(name, spec)?));
    }
    Ok(TracesSpec { n, seed, inputs })
}

/// `{"const": 16}` | `{"lo": 0, "hi": 9}` | `{"sigma": 10.0, "rho": 0.9}`.
fn decode_input_spec(name: &str, v: &Value) -> Result<InputSpec, ProtocolError> {
    let obj = v
        .as_object()
        .ok_or_else(|| bad(format!("input `{name}` spec must be an object")))?;
    let field = |k: &str| obj.get(k);
    if let Some(c) = field("const") {
        let c = c
            .as_i64()
            .ok_or_else(|| bad(format!("input `{name}`: `const` must be an integer")))?;
        return Ok(InputSpec::Constant(c));
    }
    if let (Some(lo), Some(hi)) = (field("lo"), field("hi")) {
        let lo = lo
            .as_i64()
            .ok_or_else(|| bad(format!("input `{name}`: `lo` must be an integer")))?;
        let hi = hi
            .as_i64()
            .ok_or_else(|| bad(format!("input `{name}`: `hi` must be an integer")))?;
        if lo > hi {
            return Err(bad(format!("input `{name}`: `lo` exceeds `hi`")));
        }
        return Ok(InputSpec::Uniform { lo, hi });
    }
    if let (Some(sigma), Some(rho)) = (field("sigma"), field("rho")) {
        let sigma = sigma
            .as_f64()
            .filter(|s| *s >= 0.0)
            .ok_or_else(|| bad(format!("input `{name}`: `sigma` must be non-negative")))?;
        let rho = rho
            .as_f64()
            .filter(|r| r.abs() < 1.0)
            .ok_or_else(|| bad(format!("input `{name}`: `rho` must be in (-1, 1)")))?;
        return Ok(InputSpec::GaussianAr { sigma, rho });
    }
    Err(bad(format!(
        "input `{name}`: expected {{\"const\":…}}, {{\"lo\":…,\"hi\":…}}, or {{\"sigma\":…,\"rho\":…}}"
    )))
}

/// Builds an `error` reply.
pub fn error_reply(id: &str, code: &str, message: &str) -> Value {
    error_reply_with_retry(id, code, message, None)
}

/// Builds an `error` reply carrying an optional `retry_after_ms` hint —
/// used by the `busy` and `shed` overload codes, where the client is
/// expected to back off and resubmit.
pub fn error_reply_with_retry(
    id: &str,
    code: &str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> Value {
    let mut members = vec![
        ("type", Value::Str("error".into())),
        ("id", Value::Str(id.into())),
        ("error", Value::Str(code.into())),
        ("message", Value::Str(message.into())),
    ];
    if let Some(ms) = retry_after_ms {
        members.push(("retry_after_ms", Value::Int(ms as i64)));
    }
    Value::object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn decodes_control_requests() {
        assert!(matches!(
            decode_request(&parse(r#"{"type":"ping"}"#).unwrap()).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            decode_request(&parse(r#"{"type":"stats"}"#).unwrap()).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            decode_request(&parse(r#"{"type":"shutdown"}"#).unwrap()).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn decodes_full_optimize_request() {
        let src = r#"{"type":"optimize","id":"j1","source":"proc f(n) { out y = n; }",
            "alloc":{"a1":2,"mt1":1},"objective":"power","clock_ns":20.0,
            "traces":{"n":8,"seed":42,"inputs":{
                "a":{"const":16},"b":{"lo":0,"hi":9},"c":{"sigma":10.0,"rho":0.9}}},
            "search":{"seed":7,"threads":2,"max_evaluations":100},
            "timeout_ms":5000,"priority":3,
            "check_equivalence":false,"sim_batch":false,"max_blocks":2}"#;
        let Request::Optimize(req) = decode_request(&parse(src).unwrap()).unwrap() else {
            panic!("expected optimize");
        };
        assert_eq!(req.id, "j1");
        assert_eq!(req.alloc, vec![("a1".into(), 2), ("mt1".into(), 1)]);
        assert!(matches!(req.config.objective, Objective::Power));
        assert_eq!(req.config.sched.clock_ns, 20.0);
        assert!(!req.config.check_equivalence);
        assert!(!req.config.sim_batch);
        assert_eq!(req.config.max_blocks, 2);
        assert_eq!(req.config.search.seed, 7);
        assert_eq!(req.config.search.threads, 2);
        assert_eq!(req.config.search.max_evaluations, 100);
        assert_eq!(req.timeout_ms, Some(5000));
        assert_eq!(req.priority, 3);
        assert_eq!(req.traces.n, 8);
        assert_eq!(req.traces.seed, 42);
        assert_eq!(req.traces.inputs.len(), 3);
        assert!(matches!(req.traces.inputs[0].1, InputSpec::Constant(16)));
        assert!(matches!(
            req.traces.inputs[1].1,
            InputSpec::Uniform { lo: 0, hi: 9 }
        ));
    }

    #[test]
    fn defaults_are_applied() {
        let src = r#"{"type":"optimize","source":"proc f(n) { out y = n; }",
            "alloc":{"a1":1},"traces":{"n":4,"inputs":{"n":{"const":3}}}}"#;
        let Request::Optimize(req) = decode_request(&parse(src).unwrap()).unwrap() else {
            panic!("expected optimize");
        };
        assert_eq!(req.id, "");
        assert!(matches!(req.config.objective, Objective::Throughput));
        assert!(req.config.check_equivalence);
        assert!(req.config.sim_batch);
        assert_eq!(req.timeout_ms, None);
        assert_eq!(req.priority, 0);
        assert_eq!(req.traces.seed, 1);
    }

    #[test]
    fn decodes_pareto_request() {
        let src = r#"{"type":"pareto","id":"p1","source":"proc f(n) { out y = n; }",
            "alloc":{"a1":2},"archive_capacity":16,"vdd_steps":12,
            "traces":{"n":4,"inputs":{"n":{"const":3}}},
            "search":{"seed":9,"threads":4}}"#;
        let Request::Pareto(req) = decode_request(&parse(src).unwrap()).unwrap() else {
            panic!("expected pareto");
        };
        assert_eq!(req.id, "p1");
        assert!(matches!(req.config.objective, Objective::Pareto));
        assert_eq!(req.config.pareto.archive_capacity, 16);
        assert_eq!(req.config.pareto.vdd_steps, 12);
        assert_eq!(req.config.search.seed, 9);

        // An explicit `"objective":"pareto"` is accepted as redundant.
        let src = r#"{"type":"pareto","source":"s","alloc":{},"objective":"pareto",
            "traces":{"n":1,"inputs":{}}}"#;
        assert!(matches!(
            decode_request(&parse(src).unwrap()).unwrap(),
            Request::Pareto(_)
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (src, needle) in [
            (r#"{"op":"ping"}"#, "type"),
            (r#"{"type":"frobnicate"}"#, "unknown request type"),
            (r#"{"type":"optimize"}"#, "source"),
            (
                r#"{"type":"optimize","source":"s","alloc":{"a1":-1},
                   "traces":{"n":1,"inputs":{}}}"#,
                "non-negative",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":0,"inputs":{}}}"#,
                "at least 1",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{"x":{"lo":5,"hi":1}}}}"#,
                "exceeds",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"objective":"speed"}"#,
                "unknown objective",
            ),
            (
                // A scalar objective on an optimize job must point the
                // client at the pareto request type instead.
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"objective":"pareto"}"#,
                "request type `pareto`",
            ),
            (
                r#"{"type":"pareto","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"objective":"power"}"#,
                "conflicts",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"search":{"bogus":1}}"#,
                "unknown search knob",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"timeout_ms":0}"#,
                "timeout_ms",
            ),
            (
                r#"{"type":"optimize","source":"s","alloc":{},
                   "traces":{"n":1,"inputs":{}},"priority":"high"}"#,
                "priority",
            ),
        ] {
            let err = decode_request(&parse(src).unwrap()).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{src}: error {:?} should mention {needle:?}",
                err.0
            );
        }
    }
}
