//! Deterministic fault injection for hardening tests.
//!
//! A [`FaultSpec`] describes *which* faults to inject and *how often*; a
//! [`FaultPlan`] is the armed runtime form that actually makes the
//! injection decisions. Every decision is a pure function of the plan's
//! seed, the fault site, and a per-site arrival counter — so a chaos run
//! is **replayable**: the same spec against the same request sequence
//! injects the same faults at the same points, and a test that fails
//! under `seed=42,panic=1:3` fails the same way every time.
//!
//! The plan is off in production: `factd` only arms it via the `--faults`
//! flag or the `FACTD_FAULTS` environment variable, and a disabled plan
//! costs one branch per site.
//!
//! ## Fault sites
//!
//! | spec key | site | effect |
//! |---|---|---|
//! | `panic` | candidate evaluation | `panic!` inside the per-job `catch_unwind` |
//! | `kill` | worker, after dequeue | `panic!` *outside* the per-job catch: the worker unwinds holding the job (reply sender drops, supervisor respawns) |
//! | `slow` | candidate evaluation | sleeps `slow_ms` before the job runs |
//! | `io` | TCP reply path | `ErrorKind::Interrupted` errors and short writes via [`FaultyWriter`] |
//! | `corrupt` | cache snapshot | flips one byte near the snapshot tail after a save |
//!
//! Each key takes `RATE` or `RATE:MAX` — an injection probability in
//! `[0, 1]` and an optional cap on total injections at that site
//! (`panic=1:3` panics the first three evaluations, then never again).

use fact_prng::mix64;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One fault class: an injection probability and an optional cap on the
/// number of injections (0 = unlimited).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRate {
    /// Probability in `[0, 1]` that an arrival at the site injects.
    pub rate: f64,
    /// Max injections at the site; 0 means unlimited.
    pub max: u64,
}

impl FaultRate {
    /// The never-inject rate.
    pub const OFF: FaultRate = FaultRate { rate: 0.0, max: 0 };

    /// Always inject, at most `max` times (0 = forever).
    pub fn always(max: u64) -> FaultRate {
        FaultRate { rate: 1.0, max }
    }
}

/// A declarative fault-injection plan: what to inject, how often, and
/// the seed that makes the decision sequence deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed for all injection draws.
    pub seed: u64,
    /// Panic inside candidate evaluation (caught per job).
    pub eval_panic: FaultRate,
    /// Panic in the worker outside the per-job catch (kills the worker
    /// loop; the supervisor respawns it).
    pub worker_kill: FaultRate,
    /// Artificial evaluation latency.
    pub eval_slow: FaultRate,
    /// How long a `slow` injection sleeps.
    pub slow_ms: u64,
    /// Interrupted/short writes on the TCP reply path.
    pub net_io: FaultRate,
    /// Snapshot-file corruption after a save.
    pub snapshot_corrupt: FaultRate,
}

impl Default for FaultSpec {
    /// Everything off — the production configuration.
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            eval_panic: FaultRate::OFF,
            worker_kill: FaultRate::OFF,
            eval_slow: FaultRate::OFF,
            slow_ms: 100,
            net_io: FaultRate::OFF,
            snapshot_corrupt: FaultRate::OFF,
        }
    }
}

impl FaultSpec {
    /// Whether any fault class can fire.
    pub fn is_armed(&self) -> bool {
        [
            self.eval_panic,
            self.worker_kill,
            self.eval_slow,
            self.net_io,
            self.snapshot_corrupt,
        ]
        .iter()
        .any(|r| r.rate > 0.0)
    }

    /// Parses a spec string like
    /// `seed=42,panic=1:3,kill=0.5,slow=1:2,slow_ms=250,io=0.25,corrupt=1:1`.
    ///
    /// Keys may appear in any order; omitted keys stay off. Rates are
    /// probabilities in `[0, 1]`, the optional `:MAX` caps total
    /// injections at the site.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            match key.trim() {
                "seed" => {
                    out.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("fault spec seed: {e}"))?
                }
                "slow_ms" => {
                    out.slow_ms = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("fault spec slow_ms: {e}"))?
                }
                "panic" => out.eval_panic = parse_rate("panic", value)?,
                "kill" => out.worker_kill = parse_rate("kill", value)?,
                "slow" => out.eval_slow = parse_rate("slow", value)?,
                "io" => out.net_io = parse_rate("io", value)?,
                "corrupt" => out.snapshot_corrupt = parse_rate("corrupt", value)?,
                other => {
                    return Err(format!(
                        "unknown fault key `{other}` (expected seed, panic, kill, \
                         slow, slow_ms, io, or corrupt)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Reads the `FACTD_FAULTS` environment variable; `None` when unset
    /// or empty, `Err` when set but unparseable.
    pub fn from_env() -> Result<Option<FaultSpec>, String> {
        match std::env::var("FACTD_FAULTS") {
            Ok(s) if !s.trim().is_empty() => FaultSpec::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

fn parse_rate(key: &str, value: &str) -> Result<FaultRate, String> {
    let (rate, max) = match value.split_once(':') {
        Some((r, m)) => (
            r.trim(),
            m.trim()
                .parse()
                .map_err(|e| format!("fault spec {key} max: {e}"))?,
        ),
        None => (value.trim(), 0),
    };
    let rate: f64 = rate
        .parse()
        .map_err(|e| format!("fault spec {key} rate: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault spec {key} rate {rate} outside [0, 1]"));
    }
    Ok(FaultRate { rate, max })
}

/// Site indices into the plan's counter arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
enum Site {
    EvalPanic = 0,
    WorkerKill = 1,
    EvalSlow = 2,
    NetIo = 3,
    SnapshotCorrupt = 4,
}

const SITES: usize = 5;
/// Per-site domain-separation salts for the draw hash.
const SITE_SALT: [u64; SITES] = [
    0xFA01_0A1C,
    0xFA02_011A,
    0xFA03_510B,
    0xFA04_1070,
    0xFA05_C027,
];

/// The armed runtime form of a [`FaultSpec`]: the spec plus per-site
/// arrival and injection counters. Decisions are lock-free and
/// deterministic given single-site arrival order.
pub struct FaultPlan {
    spec: FaultSpec,
    arrivals: [AtomicU64; SITES],
    injected: [AtomicU64; SITES],
}

impl FaultPlan {
    /// Arms a plan (a default spec yields an inert plan).
    pub fn new(spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            spec,
            arrivals: Default::default(),
            injected: Default::default(),
        }
    }

    /// An inert plan — every site disabled.
    pub fn disabled() -> FaultPlan {
        FaultPlan::new(FaultSpec::default())
    }

    /// Whether any fault class can fire.
    pub fn is_armed(&self) -> bool {
        self.spec.is_armed()
    }

    /// Total injections performed so far, all sites.
    pub fn injections(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// One deterministic draw at `site`: true means inject. Returns the
    /// arrival index alongside so callers can derive secondary choices
    /// (e.g. interrupt-vs-short-write) from the same sequence number.
    fn draw(&self, site: Site, rate: FaultRate) -> Option<u64> {
        if rate.rate <= 0.0 {
            return None;
        }
        let n = self.arrivals[site as usize].fetch_add(1, Ordering::Relaxed);
        // 53-bit uniform fraction from the seeded site/arrival hash.
        let h = mix64(
            self.spec.seed ^ SITE_SALT[site as usize].wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n,
        );
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        if frac >= rate.rate {
            return None;
        }
        let injected = &self.injected[site as usize];
        if rate.max > 0 {
            // Claim one of the remaining injection slots, or bail: the
            // counter only ever counts *performed* injections.
            let mut k = injected.load(Ordering::Relaxed);
            loop {
                if k >= rate.max {
                    return None;
                }
                match injected.compare_exchange_weak(k, k + 1, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(v) => k = v,
                }
            }
        } else {
            injected.fetch_add(1, Ordering::Relaxed);
        }
        Some(n)
    }

    /// Panics if an eval-panic injection is drawn. Call *inside* the
    /// per-job `catch_unwind`.
    pub fn maybe_eval_panic(&self) {
        if self.draw(Site::EvalPanic, self.spec.eval_panic).is_some() {
            panic!("injected fault: candidate evaluation panic");
        }
    }

    /// Panics if a worker-kill injection is drawn. Call *outside* the
    /// per-job catch, so the unwind drops the job (and its reply sender)
    /// and escapes to the worker supervisor.
    pub fn maybe_kill_worker(&self) {
        if self.draw(Site::WorkerKill, self.spec.worker_kill).is_some() {
            panic!("injected fault: worker killed holding a job");
        }
    }

    /// The artificial latency to add before an evaluation, if drawn.
    pub fn eval_delay(&self) -> Option<Duration> {
        self.draw(Site::EvalSlow, self.spec.eval_slow)
            .map(|_| Duration::from_millis(self.spec.slow_ms))
    }

    /// The I/O fault to inject on the next TCP write, if drawn.
    pub fn net_fault(&self) -> Option<NetFault> {
        self.draw(Site::NetIo, self.spec.net_io).map(|n| {
            // Alternate fault shapes along the arrival sequence so both
            // paths are exercised under any rate.
            if n % 2 == 0 {
                NetFault::Interrupted
            } else {
                NetFault::ShortWrite
            }
        })
    }

    /// Flips one byte near the tail of `path` if a snapshot-corruption
    /// injection is drawn (the tail, so load-time truncation recovers a
    /// nonempty prefix — the interesting failure mode). Returns whether
    /// the file was corrupted.
    pub fn maybe_corrupt_snapshot(&self, path: &Path) -> bool {
        let Some(n) = self.draw(Site::SnapshotCorrupt, self.spec.snapshot_corrupt) else {
            return false;
        };
        let Ok(mut bytes) = fs::read(path) else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let window = bytes.len().min(16);
        let h = mix64(self.spec.seed ^ 0xC027_0FF5 ^ n);
        let offset = bytes.len() - 1 - (h as usize % window);
        bytes[offset] ^= 1 << (h >> 32 & 7);
        fs::write(path, bytes).is_ok()
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("spec", &self.spec)
            .field("injections", &self.injections())
            .finish()
    }
}

/// The shape of one injected TCP write fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// The write call fails with `ErrorKind::Interrupted` (the caller
    /// must retry, as `write_all` does).
    Interrupted,
    /// The write accepts only part of the buffer (at least one byte, so
    /// retry loops always make progress).
    ShortWrite,
}

/// A writer that injects the plan's TCP faults in front of `inner`.
///
/// Injected faults are exactly the ones a real kernel socket can
/// produce — `Interrupted` errors and partial writes — so any caller
/// that survives this wrapper (e.g. by using `write_all`) survives the
/// real thing.
pub struct FaultyWriter<'a, W: Write> {
    inner: W,
    plan: &'a FaultPlan,
}

impl<'a, W: Write> FaultyWriter<'a, W> {
    /// Wraps `inner` with the plan's NetIo site.
    pub fn new(inner: W, plan: &'a FaultPlan) -> Self {
        FaultyWriter { inner, plan }
    }
}

impl<W: Write> Write for FaultyWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.len() > 1 {
            match self.plan.net_fault() {
                Some(NetFault::Interrupted) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected fault: interrupted write",
                    ));
                }
                Some(NetFault::ShortWrite) => {
                    return self.inner.write(&buf[..buf.len() / 2]);
                }
                None => {}
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let s = FaultSpec::parse(
            "seed=42, panic=1:3, kill=0.5, slow=1:2, slow_ms=250, io=0.25, corrupt=1:1",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.eval_panic, FaultRate { rate: 1.0, max: 3 });
        assert_eq!(s.worker_kill, FaultRate { rate: 0.5, max: 0 });
        assert_eq!(s.eval_slow, FaultRate { rate: 1.0, max: 2 });
        assert_eq!(s.slow_ms, 250);
        assert_eq!(s.net_io, FaultRate { rate: 0.25, max: 0 });
        assert_eq!(s.snapshot_corrupt, FaultRate::always(1));
        assert!(s.is_armed());
        assert!(!FaultSpec::default().is_armed());
        assert!(!FaultSpec::parse("").unwrap().is_armed());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "panic",           // no value
            "panic=2.0",       // rate out of range
            "panic=-0.1",      // negative
            "panic=1:x",       // bad max
            "frobnicate=1",    // unknown key
            "seed=notanumber", // bad seed
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn draws_are_deterministic_and_capped() {
        let spec = FaultSpec::parse("seed=7,panic=0.5:0").unwrap();
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.maybe_eval_panic()))
                        .is_err()
                })
                .collect()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed must give the same sequence");
        let hits = sa.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "rate 0.5 over 64 draws: {hits}");

        // A cap of 3 at rate 1.0 panics exactly the first 3 arrivals.
        let capped = FaultPlan::new(FaultSpec::parse("seed=7,panic=1:3").unwrap());
        let sc = seq(&capped);
        assert_eq!(sc.iter().filter(|&&x| x).count(), 3);
        assert!(sc[..3].iter().all(|&x| x));
        assert_eq!(capped.injections(), 3);
    }

    #[test]
    fn faulty_writer_is_survivable_with_write_all() {
        let plan = FaultPlan::new(FaultSpec::parse("seed=3,io=0.9").unwrap());
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(&mut out, &plan);
        let msg = b"the quick brown fox jumps over the lazy daemon\n";
        for _ in 0..50 {
            loop {
                match w.write_all(msg) {
                    Ok(()) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert_eq!(out.len(), msg.len() * 50);
        assert!(plan.injections() > 0, "rate 0.9 must have injected");
        assert!(out.chunks(msg.len()).all(|c| c == msg));
    }

    #[test]
    fn snapshot_corruption_flips_one_tail_byte() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fact-faults-{}.bin", std::process::id()));
        let original: Vec<u8> = (0..200u8).collect();
        fs::write(&path, &original).unwrap();
        let plan = FaultPlan::new(FaultSpec::parse("seed=9,corrupt=1:1").unwrap());
        assert!(plan.maybe_corrupt_snapshot(&path));
        let after = fs::read(&path).unwrap();
        assert_eq!(after.len(), original.len());
        let diffs: Vec<usize> = (0..after.len())
            .filter(|&i| after[i] != original[i])
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte must differ");
        assert!(
            diffs[0] >= original.len() - 16,
            "corruption must hit the tail"
        );
        // The cap is spent: a second call is a no-op.
        assert!(!plan.maybe_corrupt_snapshot(&path));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn env_arming() {
        // Not set (or set empty) → None. This test must not *set* the
        // variable: the test harness runs tests concurrently in one
        // process and env mutation would race other tests.
        if std::env::var("FACTD_FAULTS").is_err() {
            assert_eq!(FaultSpec::from_env(), Ok(None));
        }
    }
}
