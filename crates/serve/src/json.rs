//! Minimal JSON, hand-rolled on `std`.
//!
//! The build environment has no network access, so `factd`'s wire format
//! cannot lean on serde. This module implements the subset of JSON the
//! protocol needs — which is all of JSON, minus any niceties: a [`Value`]
//! tree, a recursive-descent [`parse`], and a compact writer
//! ([`Value::to_json`]). Numbers parse to `i64` when they are lossless
//! integers and `f64` otherwise; object key order is preserved (useful
//! for stable golden tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. BTreeMap: deterministic iteration for stable output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (floats with integral value convert).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` on other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Serializes to compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a trailing `.0` so the value reparses
                    // as a float; `{f}` would print `1` for 1.0.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                            // hex4 leaves pos after the digits; continue
                            // without the final increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for (src, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Int(42)),
            ("-7", Value::Int(-7)),
            ("2.5", Value::Float(2.5)),
            ("1e3", Value::Float(1000.0)),
            (r#""hi""#, Value::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn roundtrips_nested_structures() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x","d":{"e":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json(), src);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Bool(false)));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash / unicode: ünïcødé 🎉";
        let json = Value::Str(original.into()).to_json();
        assert_eq!(parse(&json).unwrap().as_str().unwrap(), original);
        // Explicit escape forms parse too.
        assert_eq!(
            parse(r#""\u0041\n\ud83c\udf89""#).unwrap(),
            Value::Str("A\n🎉".into())
        );
    }

    #[test]
    fn integers_stay_exact() {
        let big = i64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_i64(), Some(big));
        // A 64-bit seed written as an integer survives the round trip.
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn float_output_reparses_as_float() {
        assert_eq!(Value::Float(1.0).to_json(), "1.0");
        assert_eq!(parse("1.0").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01x",
            r#""unterminated"#,
            "1 2",
            r#"{"a":1,}"#,
            "\"\\q\"",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_control_chars_and_lone_surrogates() {
        assert!(parse("\"a\u{01}b\"").is_err());
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn object_helper_builds_objects() {
        let v = Value::object([("b", Value::Int(2)), ("a", Value::Int(1))]);
        assert_eq!(v.to_json(), r#"{"a":1,"b":2}"#);
    }
}
