//! The epoll connection front end: one thread multiplexing every client
//! socket (DESIGN.md §12).
//!
//! The loop owns the nonblocking listener and a per-connection state
//! machine ([`crate::conn`]): bytes read → newline framing → request
//! classification → either an immediate reply into the connection's
//! bounded outbox, or a job admitted to the shared worker queue. Workers
//! hand finished replies back through a [`CompletionQueue`] — a mutexed
//! vector plus an `eventfd` [`crate::poller::Waker`] — so the loop never
//! blocks on anything but `epoll_wait`.
//!
//! ## Ordering contract
//!
//! At most one optimize/pareto job is in flight per connection, and
//! while it runs the connection's read interest is dropped: pipelined
//! requests wait — first in our line buffer, then in the kernel socket
//! buffer (which is TCP backpressure all the way to the client). This
//! reproduces the thread model's strict request→reply ordering, and
//! level-triggered epoll re-delivers the buffered-readable state the
//! moment interest is re-armed.
//!
//! ## Lifecycle policy
//!
//! - **max connections** ([`ServerConfig::max_connections`]): excess
//!   accepts are closed immediately (clean EOF for the client).
//! - **idle timeout** ([`ServerConfig::idle_timeout_s`]): a connection
//!   with no job in flight and nothing buffered is reaped after the
//!   configured silence (`idle_disconnects`).
//! - **slow clients** ([`ServerConfig::max_outbox_bytes`]): when a
//!   client stops reading and its outbox backlog exceeds the cap after a
//!   blocked flush, the connection is dropped (`slow_client_disconnects`)
//!   rather than letting it pin server memory.
//!
//! [`ServerConfig::max_connections`]: crate::ServerConfig::max_connections
//! [`ServerConfig::idle_timeout_s`]: crate::ServerConfig::idle_timeout_s
//! [`ServerConfig::max_outbox_bytes`]: crate::ServerConfig::max_outbox_bytes

use crate::conn::{LineBuffer, Outbox};
use crate::faults::FaultyWriter;
use crate::job::JobError;
use crate::json::Value;
use crate::poller::{Interest, Poller, Waker};
use crate::protocol::error_reply;
use crate::server::{
    admit_job, classify_line, finish, job_timeout, log_stderr, LineOutcome, ReplyTo, Shared,
    WIND_DOWN_GRACE,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poll token of the listener.
const LISTENER: u64 = 0;
/// Poll token of the completion-queue waker.
const WAKER: u64 = 1;
/// First token handed to a client connection.
const FIRST_CONN: u64 = 2;
/// Cap on one buffered request line (requests carry source text, so the
/// cap is generous; a client that exceeds it without a newline cannot be
/// re-synchronized and is disconnected after an error reply).
const MAX_LINE_BYTES: usize = 8 << 20;
/// Longest `epoll_wait` between housekeeping sweeps (idle reaping,
/// deadline checks); job deadlines shorten individual waits below this.
const MAX_WAIT: Duration = Duration::from_millis(250);

/// Finished-job results handed from worker threads to the event loop.
pub(crate) struct CompletionQueue {
    done: Mutex<Vec<(u64, Result<Value, JobError>)>>,
    waker: Waker,
}

impl CompletionQueue {
    fn post(&self, job: u64, outcome: Result<Value, JobError>) {
        self.done.lock().unwrap().push((job, outcome));
        self.waker.wake();
    }

    fn drain(&self) -> Vec<(u64, Result<Value, JobError>)> {
        self.waker.drain();
        std::mem::take(&mut *self.done.lock().unwrap())
    }
}

/// The event-loop half of a worker reply. Mirrors the thread model's
/// mpsc sender, including its drop semantics: a `LoopReply` dropped
/// without [`LoopReply::send`] (worker died mid-job, or the queue
/// dropped the job) posts the same `internal` error the thread model
/// derives from a disconnected channel.
pub(crate) struct LoopReply {
    job: u64,
    completions: Arc<CompletionQueue>,
    sent: bool,
}

impl LoopReply {
    /// Posts the outcome and wakes the loop.
    pub(crate) fn send(mut self, outcome: Result<Value, JobError>) {
        self.sent = true;
        self.completions.post(self.job, outcome);
    }
}

impl Drop for LoopReply {
    fn drop(&mut self) {
        if !self.sent {
            self.completions.post(
                self.job,
                Err(JobError {
                    code: "internal",
                    message: "worker exited before replying".into(),
                    retry_after_ms: None,
                }),
            );
        }
    }
}

/// A job in flight on one connection.
struct Pending {
    /// Loop-global job token (maps completions back to connections).
    job: u64,
    /// Request id, echoed in synthesized error replies.
    id: String,
    /// The job's budget, for the timeout error message.
    timeout: Duration,
    deadline: Instant,
    /// Set when the deadline passed and the job was cancelled; expiry
    /// means the job refused to wind down.
    wind_down_until: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

/// One client connection's state machine.
struct Conn {
    stream: TcpStream,
    lines: LineBuffer,
    outbox: Outbox,
    pending: Option<Pending>,
    last_activity: Instant,
    /// Peer half-closed; finish in-flight work, flush, then close.
    peer_closed: bool,
    /// Fatal condition (oversized line, shutdown): close once flushed.
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

/// Why a connection is being dropped, for the stats counters.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Close {
    /// EOF, I/O error, policy cap, or shutdown.
    Normal,
    /// Reaped by the idle timeout.
    Idle,
    /// Outbox exceeded its cap while the socket was blocked.
    SlowClient,
}

/// Verdict after handling a connection's event.
enum Verdict {
    Keep,
    Drop(Close),
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    completions: Arc<CompletionQueue>,
    conns: HashMap<u64, Conn>,
    /// job token → connection token; an entry is removed when the reply
    /// is delivered, the wind-down expires, or the connection dies —
    /// after which a late completion is silently dropped.
    jobs: HashMap<u64, u64>,
    next_conn: u64,
    next_job: u64,
    /// Armed when shutdown is first observed; a hard stop for draining.
    drain_deadline: Option<Instant>,
}

/// Runs the epoll front end until shutdown completes (all in-flight
/// jobs replied or timed out, outboxes flushed) or the listener fails.
pub(crate) fn run_event_loop(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    poller.add(waker.raw_fd(), WAKER, Interest::READ)?;
    let mut lp = EventLoop {
        shared: Arc::clone(shared),
        listener,
        poller,
        completions: Arc::new(CompletionQueue {
            done: Mutex::new(Vec::new()),
            waker,
        }),
        conns: HashMap::new(),
        jobs: HashMap::new(),
        next_conn: FIRST_CONN,
        next_job: 0,
        drain_deadline: None,
    };
    lp.run()
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        loop {
            let timeout = self.next_wait();
            let events = self.poller.wait(Some(timeout))?;
            self.shared
                .stats
                .loop_wakeups
                .fetch_add(1, Ordering::Relaxed);
            let mut accept_ready = false;
            for ev in &events {
                match ev.token {
                    LISTENER => accept_ready = true,
                    WAKER => {} // drained below, every iteration
                    token => self.on_conn_event(
                        token,
                        ev.is_readable() || ev.is_error(),
                        ev.is_writable(),
                    ),
                }
            }
            self.deliver_completions();
            if accept_ready {
                self.accept_ready()?;
            }
            self.sweep_timers();
            if self.shutdown_drained() {
                return Ok(());
            }
        }
    }

    /// How long the next `epoll_wait` may sleep: the soonest job
    /// deadline / wind-down expiry, capped by the housekeeping tick
    /// (short while draining a shutdown).
    fn next_wait(&self) -> Duration {
        let now = Instant::now();
        let mut wait = if self.drain_deadline.is_some() {
            Duration::from_millis(50)
        } else {
            MAX_WAIT
        };
        for conn in self.conns.values() {
            if let Some(p) = &conn.pending {
                let next = p.wind_down_until.unwrap_or(p.deadline);
                wait = wait.min(next.saturating_duration_since(now));
            }
        }
        wait
    }

    /// Runs `f` on a live connection and applies its verdict. Tokens
    /// that already died this iteration are silently skipped.
    fn with_conn(&mut self, token: u64, f: impl FnOnce(&mut Self, &mut Conn) -> Verdict) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        match f(self, &mut conn) {
            Verdict::Keep => {
                self.update_interest(token, &mut conn);
                self.conns.insert(token, conn);
            }
            Verdict::Drop(why) => self.drop_conn(conn, why),
        }
    }

    fn drop_conn(&mut self, conn: Conn, why: Close) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        if let Some(p) = &conn.pending {
            // The client is gone; its job keeps running (parity with the
            // thread model) but the completion now has nowhere to go.
            self.jobs.remove(&p.job);
        }
        let stats = &self.shared.stats;
        match why {
            Close::Normal => {}
            Close::Idle => {
                stats.idle_disconnects.fetch_add(1, Ordering::Relaxed);
            }
            Close::SlowClient => {
                stats
                    .slow_client_disconnects
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        stats
            .connections_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// The interest a connection needs right now: readable unless a job
    /// is in flight (ordering contract) or the connection is winding
    /// down; writable while the outbox has a backlog.
    fn update_interest(&mut self, token: u64, conn: &mut Conn) {
        let want = Interest {
            readable: conn.pending.is_none() && !conn.close_after_flush && !conn.peer_closed,
            writable: !conn.outbox.is_empty(),
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn on_conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        self.with_conn(token, |lp, conn| {
            if readable {
                if let Verdict::Drop(why) = lp.read_ready(token, conn) {
                    // A read error still flushes nothing — close now.
                    return Verdict::Drop(why);
                }
            }
            lp.process_lines(token, conn);
            let _ = writable; // level-triggered: flush covers both cases
            lp.flush_and_judge(conn)
        });
    }

    /// Drains the socket into the line buffer. EOF and hard errors close
    /// the connection (after pending work, via the judge) or instantly
    /// when nothing is owed.
    fn read_ready(&mut self, _token: u64, conn: &mut Conn) -> Verdict {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if conn.lines.extend(&buf[..n]).is_err() {
                        // Unterminated flood: no way to resynchronize.
                        self.queue_reply(
                            conn,
                            &error_reply(
                                "",
                                "request",
                                &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                            ),
                        );
                        conn.close_after_flush = true;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => return Verdict::Drop(Close::Normal),
            }
        }
        Verdict::Keep
    }

    /// Handles buffered complete lines until a job goes in flight (the
    /// ordering contract) or the buffer runs dry.
    fn process_lines(&mut self, token: u64, conn: &mut Conn) {
        while conn.pending.is_none() && !conn.close_after_flush {
            let Some(line) = conn.lines.next_line() else {
                break;
            };
            if line.trim().is_empty() {
                continue;
            }
            match classify_line(&self.shared, &line) {
                LineOutcome::Reply(v) => self.queue_reply(conn, &v),
                LineOutcome::ReplyThenShutdown(v) => {
                    self.queue_reply(conn, &v);
                    self.shared.begin_shutdown();
                }
                LineOutcome::Submit { req, pareto } => {
                    let timeout = job_timeout(&self.shared, &req);
                    let id = req.id.clone();
                    let job = self.next_job;
                    self.next_job += 1;
                    let reply = ReplyTo::Loop(LoopReply {
                        job,
                        completions: Arc::clone(&self.completions),
                        sent: false,
                    });
                    match admit_job(&self.shared, *req, pareto, timeout, reply) {
                        Ok(cancel) => {
                            // Map the job only after admission succeeds:
                            // a rejected job's dropped LoopReply posts a
                            // completion for an unmapped token, which the
                            // drain discards.
                            self.jobs.insert(job, token);
                            conn.pending = Some(Pending {
                                job,
                                id,
                                timeout,
                                deadline: Instant::now() + timeout,
                                wind_down_until: None,
                                cancel,
                            });
                        }
                        Err(v) => self.queue_reply(conn, &v),
                    }
                }
            }
        }
    }

    fn queue_reply(&mut self, conn: &mut Conn, reply: &Value) {
        let mut line = reply.to_json();
        line.push('\n');
        conn.outbox.queue(line.as_bytes());
    }

    /// Flushes the outbox through the fault plan's writer (chaos `io`
    /// faults hit this path exactly like the thread model's reply path)
    /// and decides whether the connection lives on.
    fn flush_and_judge(&mut self, conn: &mut Conn) -> Verdict {
        let mut writer = FaultyWriter::new(&conn.stream, &self.shared.faults);
        if conn.outbox.flush(&mut writer).is_err() {
            return Verdict::Drop(Close::Normal);
        }
        if conn.outbox.over_cap() {
            // Still over the cap after giving the socket every byte it
            // would take: the client has stopped reading.
            return Verdict::Drop(Close::SlowClient);
        }
        let drained = conn.outbox.is_empty();
        if drained && conn.close_after_flush {
            return Verdict::Drop(Close::Normal);
        }
        if drained && conn.peer_closed && conn.pending.is_none() {
            return Verdict::Drop(Close::Normal);
        }
        Verdict::Keep
    }

    /// Routes drained completions to their connections and resumes
    /// buffered pipelined requests.
    fn deliver_completions(&mut self) {
        for (job, outcome) in self.completions.drain() {
            let Some(token) = self.jobs.remove(&job) else {
                continue; // admission failed, wind-down expired, conn died
            };
            self.with_conn(token, |lp, conn| {
                match conn.pending.take() {
                    Some(p) if p.job == job => {
                        let reply = finish(&p.id, outcome);
                        lp.queue_reply(conn, &reply);
                    }
                    other => conn.pending = other, // stale token; ignore
                }
                lp.process_lines(token, conn);
                lp.flush_and_judge(conn)
            });
        }
    }

    /// Accepts until the backlog is dry, enforcing the connection cap
    /// (and refusing new work during shutdown).
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst)
                        || self.conns.len() >= self.shared.config.max_connections.max(1)
                        || stream.set_nonblocking(true).is_err()
                    {
                        continue; // dropped: the client sees a clean EOF
                    }
                    let token = self.next_conn;
                    self.next_conn += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    let stats = &self.shared.stats;
                    stats.connections_total.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            lines: LineBuffer::new(MAX_LINE_BYTES),
                            outbox: Outbox::new(self.shared.config.max_outbox_bytes.max(1)),
                            pending: None,
                            last_activity: Instant::now(),
                            peer_closed: false,
                            close_after_flush: false,
                            interest: Interest::READ,
                        },
                    );
                    stats
                        .connections_open
                        .store(self.conns.len() as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Periodic housekeeping: job deadlines (cancel → wind-down →
    /// synthesized timeout), idle reaping, and shutdown closes.
    fn sweep_timers(&mut self) {
        let now = Instant::now();
        let shutdown = self.shared.shutdown.load(Ordering::SeqCst);
        let idle_after = self.shared.config.idle_timeout_s;
        let mut expired: Vec<u64> = Vec::new();
        let mut to_close: Vec<(u64, Close)> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            if let Some(p) = conn.pending.as_mut() {
                if p.wind_down_until.is_none() && now >= p.deadline {
                    // Deadline passed: cancel, then grace to wind down
                    // and deliver best-so-far (parity with the thread
                    // model's second recv_timeout).
                    p.cancel.store(true, Ordering::SeqCst);
                    p.wind_down_until = Some(now + WIND_DOWN_GRACE);
                }
                if p.wind_down_until.is_some_and(|wd| now >= wd) {
                    expired.push(token);
                }
            } else if shutdown {
                if conn.outbox.is_empty() {
                    to_close.push((token, Close::Normal));
                }
            } else if idle_after > 0
                && conn.outbox.is_empty()
                && conn.lines.pending_bytes() == 0
                && now.duration_since(conn.last_activity).as_secs() >= idle_after
            {
                to_close.push((token, Close::Idle));
            }
        }
        for (token, why) in to_close {
            if let Some(conn) = self.conns.remove(&token) {
                if why == Close::Idle && self.shared.config.log {
                    log_stderr!(
                        "factd: closing idle connection after {}s",
                        self.shared.config.idle_timeout_s
                    );
                }
                self.drop_conn(conn, why);
            }
        }
        for token in expired {
            self.with_conn(token, |lp, conn| {
                let Some(p) = conn.pending.take() else {
                    return Verdict::Keep;
                };
                // The job refused to wind down; unmap it so its eventual
                // completion is dropped, and tell the client.
                lp.jobs.remove(&p.job);
                let reply = error_reply(
                    &p.id,
                    "timeout",
                    &format!(
                        "job exceeded {}ms and did not wind down",
                        p.timeout.as_millis()
                    ),
                );
                lp.queue_reply(conn, &reply);
                lp.process_lines(token, conn);
                lp.flush_and_judge(conn)
            });
        }
    }

    /// During shutdown: `true` once nothing is owed to anyone (no
    /// in-flight jobs, all outboxes flushed) or the drain deadline hits.
    fn shutdown_drained(&mut self) -> bool {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let deadline = *self.drain_deadline.get_or_insert_with(|| {
            // Bounded by the longest a cancelled job may legitimately
            // take to wind down, plus flush slack.
            Instant::now() + WIND_DOWN_GRACE + Duration::from_secs(5)
        });
        if Instant::now() >= deadline {
            return true;
        }
        self.jobs.is_empty() && self.conns.values().all(|c| c.outbox.is_empty())
    }
}
