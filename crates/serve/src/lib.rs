//! # fact-serve — the `factd` optimization daemon
//!
//! Serves FACT optimization jobs over a std-only TCP line protocol:
//! newline-delimited JSON requests and replies (see `docs/SERVER.md`).
//! Jobs run on a worker pool with a bounded queue (a full queue rejects
//! with `busy` — backpressure), per-job timeouts with best-so-far
//! wind-down, and a shared [`fact_core::EvalCache`] that memoizes
//! candidate evaluations within and across jobs.
//!
//! The crate is pure `std`: the JSON codec is in [`json`], the request
//! schema in [`protocol`], job execution in [`job`], and the daemon
//! itself in [`server`]. On Linux the connection front end is an `epoll`
//! event loop (raw syscalls behind an internal `poller` module — no
//! external crates); elsewhere, and under `--io-model threads`, it is
//! the portable thread-per-connection model. See [`IoModel`].
//!
//! # Examples
//!
//! Boot a daemon on an ephemeral port and ping it:
//!
//! ```
//! use fact_serve::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     stats_interval_s: 0,
//!     log: false,
//!     ..ServerConfig::default()
//! })?;
//! let addr = server.local_addr()?;
//! let handle = server.handle();
//! let join = std::thread::spawn(move || server.run());
//!
//! let mut conn = std::net::TcpStream::connect(addr)?;
//! conn.write_all(b"{\"type\":\"ping\"}\n")?;
//! let mut reply = String::new();
//! BufReader::new(conn).read_line(&mut reply)?;
//! assert_eq!(reply.trim(), "{\"type\":\"pong\"}");
//!
//! handle.shutdown();
//! join.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub(crate) mod conn;
#[cfg(target_os = "linux")]
pub(crate) mod event_loop;
pub mod faults;
pub mod job;
pub mod json;
#[cfg(target_os = "linux")]
pub(crate) mod poller;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use faults::{FaultPlan, FaultRate, FaultSpec, FaultyWriter, NetFault};
pub use job::{run_job, JobError};
pub use json::{parse, Value};
pub use protocol::{decode_request, OptimizeRequest, Request, TracesSpec};
pub use queue::{JobQueue, PushError};
pub use server::{install_signal_flag, IoModel, Server, ServerConfig, ServerHandle};
pub use stats::ServerStats;
