//! Server observability: atomic job counters and a latency reservoir.
//!
//! Everything here is updated lock-free from worker and connection
//! threads except the latency samples, which go through a small mutexed
//! ring buffer (a few thousand entries — recent history is what p50/p95
//! should describe for a long-running daemon).

use crate::json::Value;
use fact_core::EvalCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many completed-job latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Counters for one server's lifetime.
pub struct ServerStats {
    start: Instant,
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs that failed (compile error, unschedulable, …).
    pub failed: AtomicU64,
    /// Jobs cut short by their deadline.
    pub timed_out: AtomicU64,
    /// Jobs refused because the queue was full or the job's deadline was
    /// unmeetable at current depth (both reply `busy`).
    pub rejected: AtomicU64,
    /// Queued jobs evicted by higher-priority arrivals (reply `shed`).
    pub jobs_shed: AtomicU64,
    /// Jobs whose evaluation panicked; the panic was caught, the client
    /// got an `internal` error, and the worker survived.
    pub jobs_panicked: AtomicU64,
    /// Worker threads that unwound past the per-job isolation and were
    /// respawned by the supervisor.
    pub workers_respawned: AtomicU64,
    /// Client connections currently open (a gauge, not a counter).
    pub connections_open: AtomicU64,
    /// Client connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Connections reaped by the idle timeout (event-loop front end).
    pub idle_disconnects: AtomicU64,
    /// Connections dropped because their outbox exceeded its cap while
    /// the client stopped reading (event-loop front end).
    pub slow_client_disconnects: AtomicU64,
    /// Event-loop `epoll_wait` returns — a coarse measure of front-end
    /// activity (0 under the thread-per-connection model).
    pub loop_wakeups: AtomicU64,
    /// Entries warm-loaded from the cache snapshot at startup.
    pub cache_warm_entries: AtomicU64,
    /// Completed (or timed-out) single-objective `optimize` jobs.
    pub optimize_jobs: AtomicU64,
    /// Completed (or timed-out) `pareto` frontier jobs.
    pub pareto_jobs: AtomicU64,
    /// Nondominated design points returned across all `pareto` jobs
    /// (frontier sizes summed; `pareto_points / pareto_jobs` is the mean
    /// curve size production logs watch).
    pub pareto_points: AtomicU64,
    /// Candidate evaluations performed across all jobs (cache hits
    /// included; see `FactResult::evaluated`).
    pub evaluations: AtomicU64,
    /// Candidate schedules computed from scratch, across all jobs
    /// (`FactResult::full_reschedules`).
    pub full_reschedules: AtomicU64,
    /// Candidate schedules that spliced memoized block fragments
    /// (`FactResult::block_spliced`).
    pub block_spliced: AtomicU64,
    /// Trace vectors simulated across all jobs
    /// (`FactResult::sim_vectors`; logical vectors, dedup multiplicities
    /// included).
    pub sim_vectors: AtomicU64,
    /// Batched simulation passes across all jobs
    /// (`FactResult::sim_batches`).
    pub sim_batches: AtomicU64,
    /// Candidate evaluations the divergence-aware selector routed to the
    /// scalar interpreter (`FactResult::sim_engine_scalar`).
    pub sim_engine_scalar: AtomicU64,
    /// Candidate evaluations the selector routed to the batched engine
    /// (`FactResult::sim_engine_batched`).
    pub sim_engine_batched: AtomicU64,
    /// Regroup-point lane compactions performed by the batched engine
    /// across all jobs (`FactResult::lane_compactions`).
    pub lane_compactions: AtomicU64,
    /// Whole-neighborhood mega-batch dispatches across all jobs
    /// (`FactResult::neighborhood_batches`).
    pub neighborhood_batches: AtomicU64,
    /// Simulation lanes dispatched by the mega-batch path across all
    /// jobs (`FactResult::mega_lanes`).
    pub mega_lanes: AtomicU64,
    /// Candidates handed to mega-batch dispatches across all jobs
    /// (`FactResult::mega_candidates`; cache hits included).
    pub mega_candidates: AtomicU64,
    /// EWMA of per-job *service* time (worker execution only, queue wait
    /// excluded), in milliseconds — the admission controller's estimate
    /// of how fast the queue drains. 0 until the first job completes.
    service_ewma_ms: AtomicU64,
    /// When the last cache snapshot was written; `None` before the first.
    last_snapshot: Mutex<Option<Instant>>,
    latencies: Mutex<LatencyRing>,
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl ServerStats {
    /// Fresh counters, clock started now.
    pub fn new() -> Self {
        ServerStats {
            start: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            idle_disconnects: AtomicU64::new(0),
            slow_client_disconnects: AtomicU64::new(0),
            loop_wakeups: AtomicU64::new(0),
            cache_warm_entries: AtomicU64::new(0),
            optimize_jobs: AtomicU64::new(0),
            pareto_jobs: AtomicU64::new(0),
            pareto_points: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            full_reschedules: AtomicU64::new(0),
            block_spliced: AtomicU64::new(0),
            sim_vectors: AtomicU64::new(0),
            sim_batches: AtomicU64::new(0),
            sim_engine_scalar: AtomicU64::new(0),
            sim_engine_batched: AtomicU64::new(0),
            lane_compactions: AtomicU64::new(0),
            neighborhood_batches: AtomicU64::new(0),
            mega_lanes: AtomicU64::new(0),
            mega_candidates: AtomicU64::new(0),
            service_ewma_ms: AtomicU64::new(0),
            last_snapshot: Mutex::new(None),
            latencies: Mutex::new(LatencyRing {
                samples: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Folds one job's worker-side execution time into the service-time
    /// EWMA (α = 1/8; a plain load/store race between workers at worst
    /// drops one sample, which the next completion repairs).
    pub fn record_service_ms(&self, ms: u64) {
        let ms = ms.max(1); // sub-millisecond jobs still register
        let old = self.service_ewma_ms.load(Ordering::Relaxed);
        let new = if old == 0 { ms } else { (old * 7 + ms) / 8 };
        self.service_ewma_ms.store(new, Ordering::Relaxed);
    }

    /// Current service-time estimate in ms (0 = no data yet).
    pub fn avg_service_ms(&self) -> u64 {
        self.service_ewma_ms.load(Ordering::Relaxed)
    }

    /// Marks a cache snapshot as just written.
    pub fn note_snapshot(&self) {
        *self.last_snapshot.lock().unwrap() = Some(Instant::now());
    }

    /// Seconds since the last cache snapshot; -1 before the first one
    /// (or when snapshotting is disabled).
    pub fn cache_snapshot_age_s(&self) -> i64 {
        match *self.last_snapshot.lock().unwrap() {
            Some(t) => t.elapsed().as_secs() as i64,
            None => -1,
        }
    }

    /// Records one finished job's wall-clock latency.
    pub fn record_latency_ms(&self, ms: u64) {
        let mut ring = self.latencies.lock().unwrap();
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(ms);
        } else {
            let i = ring.next;
            ring.samples[i] = ms;
            ring.next = (i + 1) % LATENCY_WINDOW;
        }
    }

    /// Average simulation throughput over the server's lifetime, in
    /// trace vectors per second (0.0 in the first instants of uptime).
    pub fn sim_vectors_per_sec(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sim_vectors.load(Ordering::Relaxed) as f64 / secs
    }

    /// Mean candidates per mega-batch dispatch across the server's
    /// lifetime (0.0 before any mega-batch runs).
    pub fn candidates_per_batch(&self) -> f64 {
        let batches = self.neighborhood_batches.load(Ordering::Relaxed);
        if batches == 0 {
            return 0.0;
        }
        self.mega_candidates.load(Ordering::Relaxed) as f64 / batches as f64
    }

    /// `(p50, p95)` over the recent-latency window, in milliseconds;
    /// zeros before any job completes.
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut samples = self.latencies.lock().unwrap().samples.clone();
        if samples.is_empty() {
            return (0, 0);
        }
        samples.sort_unstable();
        let pick = |p: f64| {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx]
        };
        (pick(0.50), pick(0.95))
    }

    /// The full stats snapshot as a reply [`Value`] (also the payload of
    /// the periodic log line).
    pub fn snapshot(&self, cache: &EvalCache) -> Value {
        let (p50, p95) = self.latency_percentiles();
        let cs = cache.stats();
        Value::object([
            ("type", Value::Str("stats".into())),
            (
                "uptime_s",
                Value::Int(self.start.elapsed().as_secs() as i64),
            ),
            ("jobs_submitted", counter(&self.submitted)),
            ("jobs_completed", counter(&self.completed)),
            ("jobs_failed", counter(&self.failed)),
            ("jobs_timed_out", counter(&self.timed_out)),
            ("jobs_rejected", counter(&self.rejected)),
            ("jobs_shed", counter(&self.jobs_shed)),
            ("jobs_panicked", counter(&self.jobs_panicked)),
            ("workers_respawned", counter(&self.workers_respawned)),
            ("connections_open", counter(&self.connections_open)),
            ("connections_total", counter(&self.connections_total)),
            ("idle_disconnects", counter(&self.idle_disconnects)),
            (
                "slow_client_disconnects",
                counter(&self.slow_client_disconnects),
            ),
            ("loop_wakeups", counter(&self.loop_wakeups)),
            ("optimize_jobs", counter(&self.optimize_jobs)),
            ("pareto_jobs", counter(&self.pareto_jobs)),
            ("pareto_points", counter(&self.pareto_points)),
            ("evaluations", counter(&self.evaluations)),
            ("full_reschedules", counter(&self.full_reschedules)),
            ("block_spliced", counter(&self.block_spliced)),
            ("sim_vectors", counter(&self.sim_vectors)),
            ("sim_batches", counter(&self.sim_batches)),
            ("sim_engine_scalar", counter(&self.sim_engine_scalar)),
            ("sim_engine_batched", counter(&self.sim_engine_batched)),
            ("lane_compactions", counter(&self.lane_compactions)),
            ("neighborhood_batches", counter(&self.neighborhood_batches)),
            ("mega_lanes", counter(&self.mega_lanes)),
            (
                "candidates_per_batch",
                Value::Float(self.candidates_per_batch()),
            ),
            (
                "sim_vectors_per_sec",
                Value::Float(self.sim_vectors_per_sec()),
            ),
            ("cache_hits", Value::Int(cs.hits as i64)),
            ("cache_misses", Value::Int(cs.misses as i64)),
            ("cache_entries", Value::Int(cs.entries as i64)),
            ("cache_hit_rate", Value::Float(cs.hit_rate())),
            ("cache_warm_entries", counter(&self.cache_warm_entries)),
            (
                "cache_snapshot_age_s",
                Value::Int(self.cache_snapshot_age_s()),
            ),
            ("latency_p50_ms", Value::Int(p50 as i64)),
            ("latency_p95_ms", Value::Int(p95 as i64)),
            ("service_ewma_ms", Value::Int(self.avg_service_ms() as i64)),
        ])
    }

    /// One-line human log form of the snapshot.
    pub fn log_line(&self, cache: &EvalCache) -> String {
        let (p50, p95) = self.latency_percentiles();
        let cs = cache.stats();
        format!(
            "factd stats: up={}s jobs={}/{} ok={} err={} timeout={} busy={} shed={} \
             panics={} respawns={} \
             conns={}/{} idle_dc={} slow_dc={} wakeups={} \
             kinds=opt:{}/pareto:{} pareto_pts={} \
             evals={} resched full={} spliced={} sim={}v/{}b ({:.0} v/s) \
             engine=scalar:{}/batched:{} compactions={} \
             mega={}x{:.1} ({} lanes) \
             cache={:.0}% ({} entries, warm {}, snap_age {}s) p50={}ms p95={}ms",
            self.start.elapsed().as_secs(),
            self.completed.load(Ordering::Relaxed)
                + self.failed.load(Ordering::Relaxed)
                + self.timed_out.load(Ordering::Relaxed),
            self.submitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.timed_out.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.jobs_shed.load(Ordering::Relaxed),
            self.jobs_panicked.load(Ordering::Relaxed),
            self.workers_respawned.load(Ordering::Relaxed),
            self.connections_open.load(Ordering::Relaxed),
            self.connections_total.load(Ordering::Relaxed),
            self.idle_disconnects.load(Ordering::Relaxed),
            self.slow_client_disconnects.load(Ordering::Relaxed),
            self.loop_wakeups.load(Ordering::Relaxed),
            self.optimize_jobs.load(Ordering::Relaxed),
            self.pareto_jobs.load(Ordering::Relaxed),
            self.pareto_points.load(Ordering::Relaxed),
            self.evaluations.load(Ordering::Relaxed),
            self.full_reschedules.load(Ordering::Relaxed),
            self.block_spliced.load(Ordering::Relaxed),
            self.sim_vectors.load(Ordering::Relaxed),
            self.sim_batches.load(Ordering::Relaxed),
            self.sim_vectors_per_sec(),
            self.sim_engine_scalar.load(Ordering::Relaxed),
            self.sim_engine_batched.load(Ordering::Relaxed),
            self.lane_compactions.load(Ordering::Relaxed),
            self.neighborhood_batches.load(Ordering::Relaxed),
            self.candidates_per_batch(),
            self.mega_lanes.load(Ordering::Relaxed),
            cs.hit_rate() * 100.0,
            cs.entries,
            self.cache_warm_entries.load(Ordering::Relaxed),
            self.cache_snapshot_age_s(),
            p50,
            p95,
        )
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

fn counter(c: &AtomicU64) -> Value {
    Value::Int(c.load(Ordering::Relaxed) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let s = ServerStats::new();
        assert_eq!(s.latency_percentiles(), (0, 0));
        for ms in 1..=100 {
            s.record_latency_ms(ms);
        }
        let (p50, p95) = s.latency_percentiles();
        assert!((49..=51).contains(&p50), "p50 = {p50}");
        assert!((94..=96).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn ring_keeps_recent_window() {
        let s = ServerStats::new();
        for _ in 0..LATENCY_WINDOW {
            s.record_latency_ms(1);
        }
        // Overwrite the whole window with a higher value.
        for _ in 0..LATENCY_WINDOW {
            s.record_latency_ms(1000);
        }
        assert_eq!(s.latency_percentiles(), (1000, 1000));
    }

    #[test]
    fn snapshot_reports_counters() {
        let s = ServerStats::new();
        s.submitted.fetch_add(3, Ordering::Relaxed);
        s.completed.fetch_add(2, Ordering::Relaxed);
        s.rejected.fetch_add(1, Ordering::Relaxed);
        s.full_reschedules.fetch_add(7, Ordering::Relaxed);
        s.block_spliced.fetch_add(5, Ordering::Relaxed);
        s.sim_vectors.fetch_add(640, Ordering::Relaxed);
        s.sim_batches.fetch_add(16, Ordering::Relaxed);
        s.sim_engine_scalar.fetch_add(4, Ordering::Relaxed);
        s.sim_engine_batched.fetch_add(12, Ordering::Relaxed);
        s.lane_compactions.fetch_add(9, Ordering::Relaxed);
        s.neighborhood_batches.fetch_add(4, Ordering::Relaxed);
        s.mega_lanes.fetch_add(512, Ordering::Relaxed);
        s.mega_candidates.fetch_add(18, Ordering::Relaxed);
        s.connections_open.store(4, Ordering::Relaxed);
        s.connections_total.fetch_add(11, Ordering::Relaxed);
        s.idle_disconnects.fetch_add(2, Ordering::Relaxed);
        s.slow_client_disconnects.fetch_add(1, Ordering::Relaxed);
        s.loop_wakeups.fetch_add(99, Ordering::Relaxed);
        let cache = EvalCache::default();
        let v = s.snapshot(&cache);
        assert_eq!(v.get("jobs_submitted").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("jobs_completed").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("jobs_rejected").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("full_reschedules").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("block_spliced").unwrap().as_i64(), Some(5));
        assert_eq!(v.get("sim_vectors").unwrap().as_i64(), Some(640));
        assert_eq!(v.get("sim_batches").unwrap().as_i64(), Some(16));
        assert_eq!(v.get("sim_engine_scalar").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("sim_engine_batched").unwrap().as_i64(), Some(12));
        assert_eq!(v.get("lane_compactions").unwrap().as_i64(), Some(9));
        assert_eq!(v.get("neighborhood_batches").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("mega_lanes").unwrap().as_i64(), Some(512));
        assert_eq!(v.get("candidates_per_batch").unwrap().as_f64(), Some(4.5));
        assert!(v.get("sim_vectors_per_sec").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(v.get("cache_hit_rate").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("connections_open").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("connections_total").unwrap().as_i64(), Some(11));
        assert_eq!(v.get("idle_disconnects").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("slow_client_disconnects").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("loop_wakeups").unwrap().as_i64(), Some(99));
        let line = s.log_line(&cache);
        assert!(line.contains("ok=2"));
        assert!(line.contains("conns=4/11 idle_dc=2 slow_dc=1 wakeups=99"));
        assert!(line.contains("resched full=7 spliced=5"));
        assert!(line.contains("sim=640v/16b"));
        assert!(line.contains("engine=scalar:4/batched:12 compactions=9"));
        assert!(line.contains("mega=4x4.5 (512 lanes)"));
    }
}
