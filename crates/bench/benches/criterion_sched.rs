//! Criterion microbenchmarks of the scheduler and estimator: how fast can
//! a candidate be rescheduled and re-estimated? This bounds the search
//! throughput of the Figure 6 inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Short sampling profile so `cargo bench --workspace` stays quick while
/// remaining statistically useful for these micro-scale workloads.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}
use fact_core::suite::{suite, TEST1_SRC};
use fact_estim::{evaluate, section5_library, table1_library};
use fact_lang::compile;
use fact_sched::{schedule, Allocation, SchedOptions};
use fact_sim::{generate, profile, InputSpec};
use std::hint::black_box;

fn bench_schedule_test1(c: &mut Criterion) {
    let f = compile(TEST1_SRC).unwrap();
    let (lib, rules) = table1_library();
    let mut alloc = Allocation::new();
    alloc.set(lib.by_name("comp1").unwrap(), 2);
    alloc.set(lib.by_name("cla1").unwrap(), 2);
    alloc.set(lib.by_name("incr1").unwrap(), 1);
    alloc.set(lib.by_name("w_mult1").unwrap(), 1);
    let traces = generate(
        &[
            ("c1".to_string(), InputSpec::Constant(18)),
            ("c2".to_string(), InputSpec::Constant(49)),
        ],
        4,
        7,
    );
    let prof = profile(&f, &traces);
    let opts = SchedOptions::default();
    c.bench_function("schedule_test1", |b| {
        b.iter(|| {
            let sr = schedule(black_box(&f), &lib, &rules, &alloc, &prof, &opts).unwrap();
            black_box(sr.stg.num_states())
        })
    });
}

fn bench_schedule_and_estimate_suite(c: &mut Criterion) {
    let (lib, rules) = section5_library();
    let opts = SchedOptions::default();
    let benches: Vec<_> = suite(&lib)
        .into_iter()
        .map(|b| {
            let prof = profile(&b.function, &b.traces);
            (b, prof)
        })
        .collect();
    c.bench_function("schedule_estimate_suite", |bch| {
        bch.iter(|| {
            let mut total = 0.0;
            for (b, prof) in &benches {
                let sr = schedule(&b.function, &lib, &rules, &b.allocation, prof, &opts).unwrap();
                total += evaluate(&sr, &lib, 25.0).unwrap().average_schedule_length;
            }
            black_box(total)
        })
    });
}

fn bench_profile_gcd(c: &mut Criterion) {
    let (lib, _) = section5_library();
    let b = suite(&lib).remove(0);
    c.bench_function("profile_gcd", |bch| {
        bch.iter(|| black_box(profile(&b.function, &b.traces).runs_ok))
    });
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_schedule_test1, bench_schedule_and_estimate_suite, bench_profile_gcd
}
criterion_main!(benches);
