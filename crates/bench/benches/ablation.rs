//! Ablation study of the framework's design choices.
//! Run: `cargo bench -p fact-bench --bench ablation`

fn main() {
    let rows = fact_bench::ablation::run(false);
    println!("{}", fact_bench::ablation::report(&rows));
}
