//! Regenerates the paper's Table 2 (and echoes Table 3's allocations).
//! Run: `cargo bench -p fact-bench --bench table2`

fn main() {
    let t0 = std::time::Instant::now();
    let result = fact_bench::table2::run(false);
    println!("{}", fact_bench::table2::report(&result));
    println!("(completed in {:.1}s)", t0.elapsed().as_secs_f32());
}
