//! Serve-load bench: emits `BENCH_serve.json`.
//! Run: `scripts/bench.sh serve` (or `cargo bench -p fact-bench --bench serve_perf`).
//!
//! One pass per connection front end — the epoll event loop (Linux) and
//! the thread-per-connection fallback — each holding a fleet of idle
//! connections while traffic threads drive a mixed request stream.
//!
//! Flags (after `--`):
//!   --held N      idle connections held per pass (default 512;
//!                 an explicit value wins over the `--smoke` cap)
//!   --threads N   traffic threads per pass (default 4)
//!   --requests N  requests per traffic thread (default 250)
//!   --out PATH    output file (default BENCH_serve.json)
//!   --smoke       tiny fleet, stdout only (CI well-formedness check)

use fact_bench::serve_perf::{run_pass, to_json, PassConfig};
use fact_serve::IoModel;

fn main() {
    let mut out_path = String::from("BENCH_serve.json");
    let mut smoke = false;
    let mut held: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--held" => held = Some(grab("--held")),
            "--threads" => threads = Some(grab("--threads")),
            "--requests" => requests = Some(grab("--requests")),
            "--smoke" => smoke = true,
            "--bench" => {} // cargo bench passes this through
            other => eprintln!("serve_perf: ignoring unknown flag {other}"),
        }
    }

    // Both front ends in one run, same shape, so the comparison is
    // apples-to-apples; off Linux only the portable model exists.
    let models: &[IoModel] = if cfg!(target_os = "linux") {
        &[IoModel::Epoll, IoModel::Threads]
    } else {
        &[IoModel::Threads]
    };
    let t0 = std::time::Instant::now();
    let passes: Vec<_> = models
        .iter()
        .map(|&io_model| {
            let mut cfg = if smoke {
                PassConfig::smoke(io_model)
            } else {
                PassConfig::standard(io_model)
            };
            if let Some(n) = held {
                cfg.held_connections = n;
            }
            if let Some(n) = threads {
                cfg.traffic_threads = n.max(1);
            }
            if let Some(n) = requests {
                cfg.requests_per_thread = n.max(1);
            }
            run_pass(&cfg)
        })
        .collect();
    let json = to_json(&passes);

    // Human summary on stderr so `--smoke`'s stdout is pure JSON.
    for p in &passes {
        eprintln!(
            "io={:7} held={} traffic={}x{}: {} ok / {} err in {:.2}s -> {:.0} req/sec \
             (p50 {:.2}ms p99 {:.2}ms max {:.2}ms, {} busy retries)",
            p.io_model,
            p.held_connections,
            p.traffic_threads,
            p.requests / p.traffic_threads.max(1),
            p.completed,
            p.errors,
            p.wall_s,
            p.jobs_per_sec,
            p.p50_ms,
            p.p99_ms,
            p.max_ms,
            p.busy_retries,
        );
    }
    if smoke {
        // CI path: print the JSON for the caller to validate, write nothing.
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
        println!(
            "wrote {out_path} ({:.1}s total)",
            t0.elapsed().as_secs_f32()
        );
    }
}
