//! Resource-sensitivity sweep: FACT-vs-M1 gap as allocations grow.
//! Run: `cargo bench -p fact-bench --bench sweep`

fn main() {
    let rows = fact_bench::sweep::run(false);
    println!("{}", fact_bench::sweep::report(&rows));
}
