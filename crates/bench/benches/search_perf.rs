//! Search-throughput bench: emits `BENCH_search.json`.
//! Run: `scripts/bench.sh` (or `cargo bench -p fact-bench --bench search_perf`).
//!
//! Flags (after `--`):
//!   --out PATH    output file (default BENCH_search.json)
//!   --budget N    evaluation budget per benchmark (default 400;
//!                 an explicit value wins over the `--smoke` cap)
//!   --smoke       tiny budget, stdout only (CI well-formedness check)

use fact_bench::search_perf::{run_with, standard_config, to_json};

fn main() {
    let mut out_path = String::from("BENCH_search.json");
    let mut budget = 400usize;
    let mut budget_explicit = false;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget needs a number");
                budget_explicit = true;
            }
            "--smoke" => smoke = true,
            "--bench" => {} // cargo bench passes this through
            other => eprintln!("search_perf: ignoring unknown flag {other}"),
        }
    }
    if smoke && !budget_explicit {
        budget = budget.min(10);
    }

    let t0 = std::time::Instant::now();
    let passes = measure(budget);
    let json = to_json(&passes);
    // Human summary on stderr so `--smoke`'s stdout is pure JSON.
    for p in &passes {
        eprintln!(
            "mode={} total: {} evals in {:.2}s -> {:.0} evals/sec",
            p.mode,
            p.total_evaluated(),
            p.total_wall_s(),
            p.total_evals_per_sec()
        );
        for s in &p.suites {
            eprintln!(
                "  {:8} {:5} evals {:7.3}s {:8.0} evals/sec cache {:4.0}% \
                 (compile {:.3}s sim {:.3}s est {:.3}s)",
                s.name,
                s.evaluated,
                s.wall_s,
                s.evals_per_sec,
                s.cache_hit_rate * 100.0,
                s.compile_s,
                s.simulate_s,
                s.estimate_s,
            );
        }
    }
    if smoke {
        // CI path: print the JSON for the caller to validate, write nothing.
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_search.json");
        println!(
            "wrote {out_path} ({:.1}s total)",
            t0.elapsed().as_secs_f32()
        );
    }
}

/// One pass per engine mode: the incremental engine with mega-batch
/// dispatch (the default), the same engine dispatching per candidate,
/// and the full-reschedule fallback — so the JSON carries both the
/// mega-batch speedup and the overall incremental speedup as
/// apples-to-apples ratios. All passes follow bit-identical search
/// trajectories (pinned by fact-core's equivalence tests), so evals/sec
/// is the only thing that differs.
fn measure(budget: usize) -> Vec<fact_bench::search_perf::SearchPerf> {
    let incremental = standard_config(budget);
    let mut per_candidate = standard_config(budget);
    per_candidate.mega_batch = false;
    let mut full = standard_config(budget);
    full.incremental = false;
    // Unmeasured warmup: the first pass of a fresh process otherwise
    // absorbs one-time costs (page faults, frequency ramp) and skews
    // the mode-vs-mode comparison by measurement order.
    let _ = run_with("warmup", &standard_config(budget.min(50)));
    vec![
        run_with("incremental", &incremental),
        run_with("per_candidate", &per_candidate),
        run_with("full", &full),
    ]
}
