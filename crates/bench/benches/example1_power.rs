//! Regenerates the §2.2 Example 1 power-estimation walkthrough (Table 1).
//! Run: `cargo bench -p fact-bench --bench example1_power`

fn main() {
    let r = fact_bench::example1::run();
    println!("{}", fact_bench::example1::report(&r));
}
