//! Pareto-frontier bench: emits `BENCH_pareto.json`.
//! Run: `scripts/bench.sh pareto` (or `cargo bench -p fact-bench --bench pareto_perf`).
//!
//! Flags (after `--`):
//!   --out PATH    output file (default BENCH_pareto.json)
//!   --budget N    evaluation budget per benchmark (default 600)
//!   --smoke       Test2 only; still writes the file (the CI gate
//!                 checks it exists, parses, and reports a full curve)

use fact_bench::pareto_perf::{run_with, standard_config, to_json};

fn main() {
    let mut out_path = String::from("BENCH_pareto.json");
    let mut budget = 600usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget needs a number")
            }
            "--smoke" => smoke = true,
            "--bench" => {} // cargo bench passes this through
            other => eprintln!("pareto_perf: ignoring unknown flag {other}"),
        }
    }

    let t0 = std::time::Instant::now();
    let only = if smoke { Some("Test2") } else { None };
    let pass = run_with(
        if smoke { "smoke" } else { "standard" },
        &standard_config(budget),
        only,
    );
    let json = to_json(std::slice::from_ref(&pass));
    // Human summary on stderr; stdout stays pure JSON for pipelines.
    eprintln!(
        "mode={} total: {} evals in {:.2}s -> {:.0} evals/sec",
        pass.mode,
        pass.total_evaluated(),
        pass.total_wall_s(),
        pass.total_evals_per_sec()
    );
    for s in &pass.suites {
        eprintln!(
            "  {:8} frontier {:3} (archive {:2}) hv {:5.3} {:5} evals {:7.3}s {:8.0} evals/sec",
            s.name,
            s.frontier,
            s.archive_len,
            s.hypervolume,
            s.evaluated,
            s.wall_s,
            s.evals_per_sec
        );
    }
    std::fs::write(&out_path, &json).expect("write BENCH_pareto.json");
    print!("{json}");
    eprintln!(
        "wrote {out_path} ({:.1}s total)",
        t0.elapsed().as_secs_f32()
    );
}
