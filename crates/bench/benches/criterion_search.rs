//! Criterion microbenchmarks of the transformation machinery: candidate
//! enumeration and a budgeted Apply_transforms search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Short sampling profile so `cargo bench --workspace` stays quick while
/// remaining statistically useful for these micro-scale workloads.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}
use fact_core::{apply_transforms, SearchConfig};
use fact_ir::rewrite::datapath_op_count;
use fact_lang::compile;
use fact_xform::{Region, TransformLibrary};
use std::hint::black_box;

fn bench_candidate_enumeration(c: &mut Criterion) {
    let f = compile(fact_core::suite::SINTRAN_SRC).unwrap();
    let lib = TransformLibrary::full();
    c.bench_function("enumerate_candidates_sintran", |b| {
        b.iter(|| black_box(lib.all_candidates(black_box(&f), &Region::whole()).len()))
    });
}

fn bench_structural_search(c: &mut Criterion) {
    let f = compile("proc f(a, b, c, d) { out y = a * b + a * c + a * d; }").unwrap();
    let lib = TransformLibrary::full();
    let cfg = SearchConfig {
        max_evaluations: 40,
        ..Default::default()
    };
    c.bench_function("apply_transforms_structural", |b| {
        b.iter(|| {
            let r = apply_transforms(black_box(&f), &Region::whole(), &lib, &cfg, &mut |g| {
                Some(-(datapath_op_count(g) as f64))
            });
            black_box(r.evaluated)
        })
    });
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_candidate_enumeration, bench_structural_search
}
criterion_main!(benches);
