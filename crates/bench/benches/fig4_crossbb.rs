//! Regenerates Figure 4 / Example 3: distributivity across basic blocks.
//! Run: `cargo bench -p fact-bench --bench fig4_crossbb`

fn main() {
    let r = fact_bench::fig4::run();
    println!("{}", fact_bench::fig4::report(&r));
}
