//! Regenerates Figures 2-3 / Example 2: Test2's concurrent-loop schedule
//! before and after the scheduling-guided rewrite.
//! Run: `cargo bench -p fact-bench --bench fig2_test2`

fn main() {
    let r = fact_bench::fig2::run(false);
    println!("{}", fact_bench::fig2::report(&r));
}
