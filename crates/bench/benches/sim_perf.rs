//! Simulation-throughput bench: emits `BENCH_sim.json`.
//! Run: `scripts/bench.sh sim` (or `cargo bench -p fact-bench --bench sim_perf`).
//!
//! Flags (after `--`):
//!   --out PATH     output file (default BENCH_sim.json)
//!   --vectors N    trace vectors per benchmark (default 1024)
//!   --smoke        tiny trace set, single pass, stdout only (CI check)

use fact_bench::sim_perf::{run_with, to_json};

fn main() {
    let mut out_path = String::from("BENCH_sim.json");
    let mut vectors = 1024usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--vectors" => {
                vectors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--vectors needs a number")
            }
            // Accepted (and skipped with its value) so `bench.sh all`
            // can pass one flag list to every bench target.
            "--budget" => {
                let _ = args.next();
            }
            "--smoke" => smoke = true,
            "--bench" => {} // cargo bench passes this through
            other => eprintln!("sim_perf: ignoring unknown flag {other}"),
        }
    }
    let (min_passes, min_wall_s) = if smoke {
        vectors = vectors.min(64);
        (1, 0.0)
    } else {
        (3, 0.25)
    };

    let t0 = std::time::Instant::now();
    let p = run_with(vectors, min_passes, min_wall_s);
    let json = to_json(&p);
    // Human summary on stderr so `--smoke`'s stdout is pure JSON.
    for s in &p.suites {
        eprintln!(
            "  {:8} {:4} vectors ({:4} lanes) scalar {:10.0} v/s  batched {:10.0} v/s  {:5.1}x",
            s.name,
            s.trace_vectors,
            s.distinct_lanes,
            s.scalar.vectors_per_sec,
            s.batched.vectors_per_sec,
            s.speedup
        );
    }
    if smoke {
        // CI path: print the JSON for the caller to validate, write nothing.
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
        println!(
            "wrote {out_path} ({:.1}s total)",
            t0.elapsed().as_secs_f32()
        );
    }
}
