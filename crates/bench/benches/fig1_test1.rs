//! Regenerates Figure 1: TEST1 source, CDFG, and scheduled STG.
//! Run: `cargo bench -p fact-bench --bench fig1_test1`

fn main() {
    let r = fact_bench::fig1::run();
    println!("{}", fact_bench::fig1::report(&r));
}
