//! Ablations of the design choices the paper motivates:
//!
//! * **no scheduling feedback** — select transformations with the Flamel
//!   baseline's structural objective instead of rescheduling (the paper's
//!   central claim is that this loses the neutral-but-profitable
//!   rewrites);
//! * **no cross-basic-block matching** — drop `PhiSink` from the library
//!   (§3's second claim);
//! * **no partitioning** — search the whole function as one region
//!   instead of profile-hot STG blocks (cost, not quality: more candidate
//!   evaluations for the same result on small behaviors);
//! * **scheduler features off** — concurrent loops / pipelining /
//!   rotation disabled, quantifying the substrate the transformations
//!   stand on.

use fact_core::{
    flamel, m1, optimize, suite, FactConfig, Objective, PartitionConfig, SearchConfig,
    TransformLibrary,
};
use fact_estim::section5_library;
use fact_sched::SchedOptions;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub circuit: String,
    /// Full FACT average schedule length.
    pub full: f64,
    /// Without scheduling feedback (structural objective).
    pub no_feedback: f64,
    /// Without cross-basic-block matching.
    pub no_crossbb: f64,
    /// Without STG partitioning (whole-function region).
    pub no_partition: f64,
    /// Candidates evaluated with / without partitioning.
    pub evals_partitioned: usize,
    /// Candidate evaluations without partitioning.
    pub evals_whole: usize,
    /// M1 with scheduler loop optimizations off.
    pub weak_scheduler: f64,
    /// Full M1 (all scheduler features).
    pub m1: f64,
}

fn library_without_phisink() -> TransformLibrary {
    let mut lib = TransformLibrary::new();
    lib.push(Box::new(fact_xform::algebraic::Commutativity));
    lib.push(Box::new(fact_xform::algebraic::Associativity));
    lib.push(Box::new(fact_xform::algebraic::Distributivity));
    lib.push(Box::new(fact_xform::constprop::ConstantPropagation));
    lib.push(Box::new(fact_xform::codemotion::CodeMotion));
    lib.push(Box::new(fact_xform::unroll::LoopUnroll::new(2)));
    lib
}

/// Runs the ablation study over the §5 suite.
pub fn run(quick: bool) -> Vec<AblationRow> {
    let (lib, rules) = section5_library();
    let tlib_full = TransformLibrary::full();
    let tlib_nox = library_without_phisink();
    let search = if quick {
        SearchConfig {
            max_moves: 2,
            in_set_size: 2,
            max_rounds: 3,
            max_evaluations: 60,
            ..Default::default()
        }
    } else {
        SearchConfig {
            max_moves: 3,
            in_set_size: 3,
            max_rounds: 4,
            max_evaluations: 150,
            ..Default::default()
        }
    };
    let sched = SchedOptions::default();
    let weak_sched = SchedOptions {
        if_convert: false,
        rotate: false,
        pipeline: false,
        concurrent: false,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for b in suite(&lib) {
        let base_cfg = FactConfig {
            objective: Objective::Throughput,
            search: search.clone(),
            sched: sched.clone(),
            ..Default::default()
        };
        let run_with = |tlib: &TransformLibrary, cfg: &FactConfig| {
            optimize(
                &b.function,
                &lib,
                &rules,
                &b.allocation,
                &b.traces,
                tlib,
                cfg,
            )
        };

        let full = run_with(&tlib_full, &base_cfg).expect("full FACT runs");
        let no_crossbb = run_with(&tlib_nox, &base_cfg).expect("ablation runs");

        // No partitioning: one whole-function region (threshold that
        // selects nothing forces the whole-region fallback).
        let whole_cfg = FactConfig {
            partition: PartitionConfig {
                threshold_fraction: f64::INFINITY,
            },
            ..base_cfg.clone()
        };
        let no_partition = run_with(&tlib_full, &whole_cfg).expect("ablation runs");

        // No scheduling feedback = the Flamel baseline.
        let no_feedback = flamel(&b.function, &lib, &rules, &b.allocation, &b.traces, &sched)
            .expect("flamel runs");

        let m1_full =
            m1(&b.function, &lib, &rules, &b.allocation, &b.traces, &sched).expect("m1 runs");
        let m1_weak = m1(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &weak_sched,
        )
        .expect("m1 weak runs");

        rows.push(AblationRow {
            circuit: b.name.to_string(),
            full: full.estimate.average_schedule_length,
            no_feedback: no_feedback.estimate.average_schedule_length,
            no_crossbb: no_crossbb.estimate.average_schedule_length,
            no_partition: no_partition.estimate.average_schedule_length,
            evals_partitioned: full.evaluated,
            evals_whole: no_partition.evaluated,
            weak_scheduler: m1_weak.estimate.average_schedule_length,
            m1: m1_full.estimate.average_schedule_length,
        });
    }
    rows
}

/// Renders the ablation table.
pub fn report(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    s.push_str("Ablations — average schedule length (cycles; lower is better)\n\n");
    s.push_str(&format!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10}\n",
        "Circuit", "FACT", "no-feedbk", "no-crossbb", "no-partition", "weak-sched", "M1"
    ));
    s.push_str(&format!("{}\n", "-".repeat(76)));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>8.1} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>10.1}\n",
            r.circuit, r.full, r.no_feedback, r.no_crossbb, r.no_partition, r.weak_scheduler, r.m1
        ));
    }
    s.push_str("\ncandidate evaluations (partitioned vs whole-function):\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<10} {:>6} vs {:>6}\n",
            r.circuit, r.evals_partitioned, r.evals_whole
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_preserve_expected_orderings() {
        let rows = run(true);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // Scheduling feedback never hurts.
            assert!(
                r.full <= r.no_feedback * 1.02,
                "{}: full {} vs no-feedback {}",
                r.circuit,
                r.full,
                r.no_feedback
            );
            // The full scheduler substrate dominates the weak one.
            assert!(
                r.m1 <= r.weak_scheduler * 1.02,
                "{}: m1 {} vs weak {}",
                r.circuit,
                r.m1,
                r.weak_scheduler
            );
        }
        // Somewhere the feedback matters strictly (Test2's neutral rewrite).
        assert!(rows.iter().any(|r| r.full < 0.95 * r.no_feedback));
    }
}
