//! Simulation-throughput measurement: trace vectors/sec, scalar vs
//! batched, over the §5 suite behaviors.
//!
//! The candidate-evaluation inner loop of a FACT search is dominated by
//! simulation (equivalence checks + branch profiling), so this module
//! measures that layer in isolation: how many trace vectors per second
//! each execution engine sustains when profiling a suite behavior over a
//! large trace set drawn from the benchmark's own input distributions
//! ([`fact_core::suite::input_specs`]). Both engines are run over the
//! *same* compiled function and trace set, their profiles are asserted
//! identical (the engines are bit-identical by contract), and only the
//! wall-clock differs. The `sim_perf` bench target writes the result as
//! `BENCH_sim.json`.
//!
//! Vectors are counted *logically* (through [`SimCounters`]): a
//! deduplicated lane of multiplicity `k` counts `k`, so constant-heavy
//! trace sets (Test2, SINTRAN) show the dedup win while the all-distinct
//! PPS set isolates the raw lockstep-lane win.
//!
//! Std-only by design (the offline build has no serde/criterion): the
//! JSON is emitted by hand from a flat result struct.

use fact_core::suite::{input_specs, suite};
use fact_estim::section5_library;
use fact_ir::Function;
use fact_lang::compile;
use fact_sim::{
    generate, measure_divergence, profile_compiled_with, CompiledFn, ExecConfig, InputSpec,
    SimCounters, SimEngine, TraceSet,
};
use std::time::Instant;

/// Synthetic high-divergence behavior: every loop iteration branches on
/// a mod-97 test of a per-lane LCG state (the low bit would alternate
/// identically in every lane — low-bit LCG weakness), so no two lanes
/// agree on a branch pattern and the lockstep engine's fast path starves. The §5 suite has
/// nothing this hostile (GCD is the closest), which is exactly why the
/// engine selector needs a measured rate rather than a structural guess.
const RANDWALK_SRC: &str = r#"
proc randwalk(s, n) {
    var acc = 0;
    var i = 0;
    while (i < n) {
        s = (s * 1103515245 + 12345) % 2147483648;
        if (s % 97 < 49) { acc = acc + (s % 97); } else { acc = acc - (s % 89); }
        i = i + 1;
    }
    out r = acc;
}
"#;

/// Divergence rate above which the selector picks the scalar engine —
/// kept in lockstep with `SCALAR_DIVERGENCE_THRESHOLD` in
/// `fact-core::pipeline`, which this bench exists to calibrate.
const SCALAR_DIVERGENCE_THRESHOLD: f64 = 0.1;

/// Throughput of one engine on one benchmark.
#[derive(Clone, Debug)]
pub struct EnginePerf {
    /// Engine label (`scalar` or `batched`).
    pub engine: &'static str,
    /// Profiling passes completed inside the measurement window.
    pub passes: usize,
    /// Logical trace vectors simulated (dedup multiplicities included).
    pub vectors: u64,
    /// `run_batch` invocations (0 for the scalar engine).
    pub batches: u64,
    /// Wall-clock time of the measurement window, seconds.
    pub wall_s: f64,
    /// `vectors / wall_s`.
    pub vectors_per_sec: f64,
}

/// Scalar-vs-batched measurement of one suite benchmark.
#[derive(Clone, Debug)]
pub struct SimSuitePerf {
    /// Benchmark name (Table 2 row).
    pub name: &'static str,
    /// Trace vectors per profiling pass.
    pub trace_vectors: usize,
    /// Distinct vectors after [`TraceSet::dedup_lanes`] (the batched
    /// engine's actual per-pass workload).
    pub distinct_lanes: usize,
    /// Measured divergence rate (slow lane-steps / total lane-steps) from
    /// a single probe batch — the quantity the engine selector keys on.
    pub divergence_rate: f64,
    /// Engine the selector picks for this behavior under these traces
    /// (`"scalar"` or `"batched"`).
    pub chosen: &'static str,
    /// Scalar-engine measurement.
    pub scalar: EnginePerf,
    /// Batched-engine measurement.
    pub batched: EnginePerf,
    /// Raw `batched.vectors_per_sec / scalar.vectors_per_sec`, engine
    /// selector ignored.
    pub batched_speedup: f64,
    /// Chosen-engine throughput over scalar throughput: the raw ratio
    /// when the selector picks batched, exactly 1.0 when it picks scalar
    /// (the selector is what makes the batched path never lose).
    pub speedup: f64,
}

/// One full measurement: every Table 2 benchmark, both engines.
#[derive(Clone, Debug)]
pub struct SimPerf {
    /// Trace vectors generated per benchmark.
    pub vectors: usize,
    /// Per-benchmark measurements.
    pub suites: Vec<SimSuitePerf>,
}

/// Runs one engine repeatedly over `(cf, traces)` until both `min_passes`
/// and `min_wall_s` are met (capped at 20k passes so a microsecond-fast
/// configuration cannot spin unboundedly).
fn measure_engine(
    label: &'static str,
    cf: &CompiledFn,
    traces: &TraceSet,
    engine: SimEngine,
    min_passes: usize,
    min_wall_s: f64,
) -> EnginePerf {
    let config = ExecConfig {
        engine,
        ..ExecConfig::default()
    };
    let counters = SimCounters::default();
    let mut passes = 0usize;
    let t0 = Instant::now();
    loop {
        std::hint::black_box(profile_compiled_with(cf, traces, &config, Some(&counters)));
        passes += 1;
        if passes >= min_passes && (t0.elapsed().as_secs_f64() >= min_wall_s || passes >= 20_000) {
            break;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let vectors = counters.vectors();
    EnginePerf {
        engine: label,
        passes,
        vectors,
        batches: counters.batches(),
        wall_s,
        vectors_per_sec: if wall_s > 0.0 {
            vectors as f64 / wall_s
        } else {
            0.0
        },
    }
}

/// Runs the simulation-throughput measurement over the §5 suite:
/// `vectors` trace vectors per benchmark, each engine run for at least
/// `min_passes` passes and `min_wall_s` seconds.
///
/// # Panics
/// Panics if the two engines disagree on a profile — bit-identity is the
/// contract this bench rides on, so a disagreement is a bug worth
/// aborting the measurement for.
pub fn run_with(vectors: usize, min_passes: usize, min_wall_s: f64) -> SimPerf {
    type Case = (&'static str, Function, Vec<(String, InputSpec)>);
    let (lib, _) = section5_library();
    let mut cases: Vec<Case> = suite(&lib)
        .into_iter()
        .map(|b| {
            let specs = input_specs(b.name).expect("suite benchmark has input specs");
            (b.name, b.function, specs)
        })
        .collect();
    cases.push((
        "RANDWALK",
        compile(RANDWALK_SRC).expect("RANDWALK_SRC compiles"),
        vec![
            ("s".to_string(), InputSpec::Uniform { lo: 1, hi: 1 << 30 }),
            ("n".to_string(), InputSpec::Constant(64)),
        ],
    ));
    let mut suites = Vec::new();
    for (name, function, specs) in cases {
        let traces = generate(&specs, vectors, 0x51AB5);
        let cf = CompiledFn::compile(&function);
        let distinct_lanes = traces.dedup_lanes().len();
        // Bit-identity guard before timing anything.
        let scalar_prof = profile_compiled_with(&cf, &traces, &scalar_config(), None);
        let batched_prof = profile_compiled_with(&cf, &traces, &ExecConfig::default(), None);
        assert_eq!(
            scalar_prof, batched_prof,
            "{name}: engines disagree on the profile"
        );
        let divergence_rate = measure_divergence(&cf, &traces, &ExecConfig::default(), None);
        let chosen = if divergence_rate > SCALAR_DIVERGENCE_THRESHOLD {
            "scalar"
        } else {
            "batched"
        };
        let scalar = measure_engine(
            "scalar",
            &cf,
            &traces,
            SimEngine::Scalar,
            min_passes,
            min_wall_s,
        );
        let batched = measure_engine(
            "batched",
            &cf,
            &traces,
            SimEngine::default(),
            min_passes,
            min_wall_s,
        );
        let batched_speedup = if scalar.vectors_per_sec > 0.0 {
            batched.vectors_per_sec / scalar.vectors_per_sec
        } else {
            0.0
        };
        let speedup = if chosen == "scalar" {
            1.0
        } else {
            batched_speedup
        };
        suites.push(SimSuitePerf {
            name,
            trace_vectors: traces.len(),
            distinct_lanes,
            divergence_rate,
            chosen,
            scalar,
            batched,
            batched_speedup,
            speedup,
        });
    }
    SimPerf { vectors, suites }
}

fn scalar_config() -> ExecConfig {
    ExecConfig {
        engine: SimEngine::Scalar,
        ..ExecConfig::default()
    }
}

fn engine_json(e: &EnginePerf) -> String {
    format!(
        "{{\"passes\": {}, \"vectors\": {}, \"batches\": {}, \
         \"wall_s\": {:.4}, \"vectors_per_sec\": {:.1}}}",
        e.passes, e.vectors, e.batches, e.wall_s, e.vectors_per_sec
    )
}

/// Renders a measurement as a JSON document.
pub fn to_json(p: &SimPerf) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"sim\",\n  \"vectors\": {},\n  \"suites\": [\n",
        p.vectors
    );
    for (i, s) in p.suites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"trace_vectors\": {}, \"distinct_lanes\": {},\n     \
             \"divergence_rate\": {:.4}, \"chosen\": \"{}\",\n     \
             \"scalar\": {},\n     \"batched\": {},\n     \
             \"batched_speedup\": {:.2}, \"speedup\": {:.2}}}{}\n",
            s.name,
            s.trace_vectors,
            s.distinct_lanes,
            s.divergence_rate,
            s.chosen,
            engine_json(&s.scalar),
            engine_json(&s.batched),
            s.batched_speedup,
            s.speedup,
            if i + 1 < p.suites.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_numbers() {
        let p = run_with(32, 1, 0.0);
        assert_eq!(p.suites.len(), 7);
        for s in &p.suites {
            assert_eq!(s.trace_vectors, 32);
            assert!(s.distinct_lanes >= 1 && s.distinct_lanes <= 32);
            assert_eq!(s.scalar.batches, 0, "{}: scalar engine batched", s.name);
            assert!(s.batched.batches > 0, "{}: batched engine did not", s.name);
            assert!(s.scalar.vectors >= 32);
            assert!(s.batched.vectors >= 32);
            assert!(
                (0.0..=1.0).contains(&s.divergence_rate),
                "{}: divergence out of range",
                s.name
            );
            if s.chosen == "scalar" {
                assert_eq!(s.speedup, 1.0, "{}: scalar choice must report 1.0", s.name);
            } else {
                assert_eq!(s.chosen, "batched");
                assert_eq!(s.speedup, s.batched_speedup, "{}", s.name);
            }
        }
        // Constant-trace benchmarks collapse to one lane.
        let test2 = p.suites.iter().find(|s| s.name == "Test2").unwrap();
        assert_eq!(test2.distinct_lanes, 1);
        // The synthetic random-branch behavior is the divergence extreme
        // of the set: distinct per-lane branch patterns every iteration.
        let rw = p.suites.iter().find(|s| s.name == "RANDWALK").unwrap();
        assert_eq!(rw.distinct_lanes, 32);
        assert!(
            rw.divergence_rate
                > p.suites
                    .iter()
                    .filter(|s| s.name != "RANDWALK" && s.name != "GCD")
                    .map(|s| s.divergence_rate)
                    .fold(0.0, f64::max),
            "RANDWALK should out-diverge every structured benchmark"
        );
        let json = to_json(&p);
        assert!(json.contains("\"bench\": \"sim\""));
        assert!(json.contains("\"divergence_rate\""));
        assert!(json.contains("\"chosen\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
