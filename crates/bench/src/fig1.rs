//! Figure 1 reproduction: TEST1's source (1a), CDFG (1b, as Graphviz),
//! and scheduled STG (1c), including the implicit-unrolling evidence —
//! next-iteration operations folded into the loop's tail state, like the
//! paper's `S5 = {S.0, ++1_1, <1_1}`.

use fact_core::suite::TEST1_SRC;
use fact_estim::table1_library;
use fact_ir::dot::function_to_dot;
use fact_lang::compile;
use fact_sched::{schedule, Allocation, SchedOptions, ScheduleResult};
use fact_sim::{generate, profile, InputSpec};

/// The figure's artifacts.
pub struct Fig1Result {
    /// Graphviz source of the CDFG (Figure 1(b)).
    pub cdfg_dot: String,
    /// The scheduled STG (Figure 1(c)).
    pub schedule: ScheduleResult,
    /// Whether any state carries a next-iteration (iter ≥ 1) op or the
    /// loop was kernel-pipelined — the "implicit unrolling" evidence.
    pub overlaps_iterations: bool,
}

/// Builds Figure 1's artifacts.
///
/// # Panics
/// Panics if TEST1 fails to compile or schedule (covered by tests).
pub fn run() -> Fig1Result {
    let f = compile(TEST1_SRC).expect("TEST1 compiles");
    let cdfg_dot = function_to_dot(&f);

    let (lib, rules) = table1_library();
    let mut alloc = Allocation::new();
    alloc.set(lib.by_name("comp1").unwrap(), 2);
    alloc.set(lib.by_name("cla1").unwrap(), 2);
    alloc.set(lib.by_name("incr1").unwrap(), 1);
    alloc.set(lib.by_name("w_mult1").unwrap(), 1);
    let traces = generate(
        &[
            ("c1".to_string(), InputSpec::Constant(18)),
            ("c2".to_string(), InputSpec::Constant(49)),
        ],
        4,
        7,
    );
    let prof = profile(&f, &traces);
    let sr = schedule(&f, &lib, &rules, &alloc, &prof, &SchedOptions::default())
        .expect("TEST1 schedules");

    let overlaps_iterations = sr
        .stg
        .state_ids()
        .any(|s| sr.stg.state(s).ops.iter().any(|o| o.iter >= 1))
        || !sr.report.kernels.is_empty();

    Fig1Result {
        cdfg_dot,
        schedule: sr,
        overlaps_iterations,
    }
}

/// Renders the figure report.
pub fn report(r: &Fig1Result) -> String {
    let mut s = String::new();
    s.push_str("Figure 1(a) — TEST1 source:\n");
    s.push_str(TEST1_SRC);
    s.push_str("\nFigure 1(b) — CDFG (Graphviz; render with `dot -Tpdf`):\n");
    s.push_str(&r.cdfg_dot);
    s.push_str("\nFigure 1(c) — scheduled STG:\n");
    s.push_str(&r.schedule.stg.pretty(&r.schedule.function));
    s.push_str(&format!(
        "\nimplicit unrolling / pipelining across iterations: {}\n",
        if r.overlaps_iterations { "yes" } else { "no" }
    ));
    s.push_str(&format!("scheduler report: {:?}\n", r.schedule.report));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_artifacts_are_complete() {
        let r = run();
        assert!(r.cdfg_dot.starts_with("digraph"));
        // The CDFG shows the data (solid) and control (dashed) arcs of 1(b).
        assert!(r.cdfg_dot.contains("style=dashed"));
        r.schedule.stg.validate().unwrap();
        // The full scheduler overlaps iterations on TEST1 (Figure 1(c)'s
        // S5 executes next-iteration ops) — via rotation or pipelining.
        assert!(r.overlaps_iterations);
    }
}
