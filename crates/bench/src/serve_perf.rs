//! Serve-load measurement: `factd` front-end throughput under hundreds
//! of concurrent connections.
//!
//! Where [`crate::search_perf`] measures the optimization engine, this
//! module measures the daemon's *connection front end*: an in-process
//! server is booted, a fleet of idle connections is opened and held (so
//! the front end is really multiplexing them all), and traffic threads
//! hammer it with a mixed request stream — mostly `ping`/`stats` (the
//! front end's own cost), with a cache-hot `optimize` and `pareto` job
//! sprinkled in so the worker handoff path is exercised too. Each pass
//! records client-observed latency percentiles and sustained
//! requests/sec; the `serve_perf` bench target runs one pass per
//! [`fact_serve::IoModel`] and writes `BENCH_serve.json` so the epoll
//! event loop and the thread-per-connection fallback can be compared
//! number-for-number.
//!
//! Std-only by design (the offline build has no serde/criterion): the
//! JSON is emitted by hand from a flat result struct.

use crate::client::{ClientError, RetryPolicy, RetryingClient};
use fact_serve::{parse, IoModel, Server, ServerConfig, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

/// Shape of one measurement pass.
#[derive(Clone, Debug)]
pub struct PassConfig {
    /// Which connection front end the server runs.
    pub io_model: IoModel,
    /// Idle connections opened (and pinged once) before traffic starts,
    /// then held open for the whole pass.
    pub held_connections: usize,
    /// Concurrent traffic threads.
    pub traffic_threads: usize,
    /// Requests issued per traffic thread.
    pub requests_per_thread: usize,
    /// Server worker threads (jobs are cache-hot, so 1 suffices).
    pub workers: usize,
}

impl PassConfig {
    /// The standard full-measurement pass for `io_model`: 512 held
    /// connections, 4 traffic threads × 250 requests.
    pub fn standard(io_model: IoModel) -> PassConfig {
        PassConfig {
            io_model,
            held_connections: 512,
            traffic_threads: 4,
            requests_per_thread: 250,
            workers: 1,
        }
    }

    /// A CI-sized smoke pass: enough connections to mean something,
    /// small enough to finish in seconds on one core.
    pub fn smoke(io_model: IoModel) -> PassConfig {
        PassConfig {
            io_model,
            held_connections: 64,
            traffic_threads: 2,
            requests_per_thread: 25,
            workers: 1,
        }
    }
}

/// Result of one measurement pass.
#[derive(Clone, Debug)]
pub struct PassResult {
    /// Front end measured (`epoll` or `threads`).
    pub io_model: String,
    /// Idle connections actually held throughout the pass.
    pub held_connections: usize,
    /// Concurrent traffic threads.
    pub traffic_threads: usize,
    /// Requests issued (completed + errored).
    pub requests: usize,
    /// Requests answered with a terminal (non-overload) reply.
    pub completed: usize,
    /// Overload (`busy`/`shed`) replies absorbed by client retries.
    pub busy_retries: u64,
    /// Requests that failed outright (I/O or exhausted retries).
    pub errors: usize,
    /// Wall-clock time of the traffic phase, seconds.
    pub wall_s: f64,
    /// `completed / wall_s`.
    pub jobs_per_sec: f64,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
    /// Worst client-observed latency, milliseconds.
    pub max_ms: f64,
    /// The server's default per-job deadline (the latency budget the
    /// CI gate checks `p99_ms` against), milliseconds.
    pub timeout_budget_ms: u64,
    /// `connections_total` from the server's own STATS at pass end.
    pub connections_total: i64,
}

/// A small factorable job (the §5 idiom) for the traffic mix. One cold
/// run populates the shared evaluation cache; every later submission is
/// cache-served, keeping the measurement front-end-bound.
const TRAFFIC_SOURCE: &str = "proc f(n, a, b) { var s = 0; var i = 0; \
     while (i < n) { var t = s + 1; s = t * a + t * b; i = i + 1; } out s = s; }";

fn job_line(kind: &str, id: &str, extra: &[(&'static str, Value)]) -> String {
    let alloc = Value::object([
        ("a1", Value::Int(2)),
        ("mt1", Value::Int(1)),
        ("cp1", Value::Int(1)),
        ("i1", Value::Int(2)),
        ("sb1", Value::Int(1)),
    ]);
    let traces = Value::object([
        ("n", Value::Int(4)),
        ("seed", Value::Int(7)),
        (
            "inputs",
            Value::object([
                ("n", Value::object([("const", Value::Int(10))])),
                ("a", Value::object([("const", Value::Int(2))])),
                ("b", Value::object([("const", Value::Int(3))])),
            ]),
        ),
    ]);
    let mut req = vec![
        ("type", Value::Str(kind.into())),
        ("id", Value::Str(id.into())),
        ("source", Value::Str(TRAFFIC_SOURCE.into())),
        ("alloc", alloc),
        ("traces", traces),
        (
            "search",
            Value::object([("max_evaluations", Value::Int(40))]),
        ),
    ];
    req.extend(extra.iter().cloned());
    Value::object(req).to_json()
}

/// The request a traffic thread issues for its `i`-th slot: mostly
/// `ping`/`stats`, every 10th a cache-hot `optimize`, every 25th a
/// `pareto` — light enough that the front end, not the worker pool, is
/// the bottleneck being measured.
fn traffic_line(thread: usize, i: usize) -> String {
    if i % 25 == 24 {
        job_line(
            "pareto",
            &format!("t{thread}-r{i}"),
            &[
                ("archive_capacity", Value::Int(8)),
                ("vdd_steps", Value::Int(4)),
            ],
        )
    } else if i % 10 == 9 {
        job_line("optimize", &format!("t{thread}-r{i}"), &[])
    } else if i.is_multiple_of(3) {
        "{\"type\":\"stats\"}".to_string()
    } else {
        "{\"type\":\"ping\"}".to_string()
    }
}

/// Latency at quantile `q` (0..=1) of an unsorted sample, milliseconds.
/// Returns 0 for an empty sample.
pub fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn ping_roundtrip(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"{\"type\":\"ping\"}\n")?;
    let mut reply = String::new();
    BufReader::new(stream.try_clone()?).read_line(&mut reply)?;
    if reply.trim() != "{\"type\":\"pong\"}" {
        return Err(std::io::Error::other(format!("bad pong: {reply:?}")));
    }
    Ok(())
}

fn stats_roundtrip(addr: SocketAddr) -> Option<Value> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.write_all(b"{\"type\":\"stats\"}\n").ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    parse(reply.trim()).ok()
}

/// Boots an in-process server with the pass's front end, holds the idle
/// connection fleet, runs the traffic threads, and collects the result.
///
/// # Panics
///
/// Panics if the server cannot bind or fewer than the configured held
/// connections can be established — a partial fleet would silently
/// measure a different experiment than the one reported.
pub fn run_pass(cfg: &PassConfig) -> PassResult {
    let timeout_budget_ms = ServerConfig::default().default_timeout_ms;
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: cfg.workers.max(1),
        stats_interval_s: 0,
        log: false,
        io_model: cfg.io_model,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().unwrap());

    // Warm the evaluation cache so in-traffic jobs are cache-served and
    // the pass measures the front end, not one cold compile.
    let mut warm = RetryingClient::new(addr, RetryPolicy::default());
    warm.request(&job_line("optimize", "warm-opt", &[]))
        .expect("warmup optimize");
    warm.request(&job_line(
        "pareto",
        "warm-par",
        &[
            ("archive_capacity", Value::Int(8)),
            ("vdd_steps", Value::Int(4)),
        ],
    ))
    .expect("warmup pareto");

    // The held fleet: connect, prove each one live with a ping, keep it.
    let mut held: Vec<TcpStream> = Vec::with_capacity(cfg.held_connections);
    for i in 0..cfg.held_connections {
        let mut stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("held connection {i}/{}: {e}", cfg.held_connections));
        ping_roundtrip(&mut stream).unwrap_or_else(|e| panic!("held connection {i} ping: {e}"));
        held.push(stream);
    }

    // Traffic: each thread drives its own retrying client through the
    // mixed request stream, timing every exchange.
    let t0 = Instant::now();
    let threads: Vec<_> = (0..cfg.traffic_threads)
        .map(|t| {
            let n = cfg.requests_per_thread;
            thread::spawn(move || {
                let mut client = RetryingClient::new(
                    addr,
                    RetryPolicy {
                        seed: t as u64 + 1,
                        ..RetryPolicy::default()
                    },
                );
                let mut latencies_ms = Vec::with_capacity(n);
                let mut busy_retries = 0u64;
                let mut errors = 0usize;
                for i in 0..n {
                    let line = traffic_line(t, i);
                    let started = Instant::now();
                    match client.request(&line) {
                        Ok(x) => {
                            latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                            busy_retries += (x.attempts - 1) as u64;
                        }
                        Err(ClientError::Exhausted { attempts }) => {
                            busy_retries += attempts as u64;
                            errors += 1;
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies_ms, busy_retries, errors)
            })
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let mut busy_retries = 0u64;
    let mut errors = 0usize;
    for t in threads {
        let (lat, busy, errs) = t.join().expect("traffic thread");
        latencies_ms.extend(lat);
        busy_retries += busy;
        errors += errs;
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let connections_total = stats_roundtrip(addr)
        .and_then(|s| s.get("connections_total").and_then(Value::as_i64))
        .unwrap_or(0);

    // Release the fleet before shutdown so front-end threads (in the
    // threads model) unblock on EOF rather than waiting out the drain.
    drop(held);
    handle.shutdown();
    join.join().expect("server thread");

    let completed = latencies_ms.len();
    PassResult {
        io_model: cfg.io_model.to_string(),
        held_connections: cfg.held_connections,
        traffic_threads: cfg.traffic_threads,
        requests: cfg.traffic_threads * cfg.requests_per_thread,
        completed,
        busy_retries,
        errors,
        wall_s,
        jobs_per_sec: if wall_s > 0.0 {
            completed as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        max_ms: percentile_ms(&latencies_ms, 1.0),
        timeout_budget_ms,
        connections_total,
    }
}

/// Renders measurement passes as a JSON document.
pub fn to_json(passes: &[PassResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"serve\",\n  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"io_model\": \"{}\", \"held_connections\": {}, \"traffic_threads\": {}, \
             \"requests\": {}, \"completed\": {}, \"busy_retries\": {}, \"errors\": {}, \
             \"wall_s\": {:.4}, \"jobs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"max_ms\": {:.3}, \"timeout_budget_ms\": {}, \"connections_total\": {}}}{}\n",
            p.io_model,
            p.held_connections,
            p.traffic_threads,
            p.requests,
            p.completed,
            p.busy_retries,
            p.errors,
            p.wall_s,
            p.jobs_per_sec,
            p.p50_ms,
            p.p99_ms,
            p.max_ms,
            p.timeout_budget_ms,
            p.connections_total,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_sample() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_ms(&samples, 0.0), 1.0);
        assert_eq!(percentile_ms(&samples, 0.5), 51.0);
        assert_eq!(percentile_ms(&samples, 0.99), 99.0);
        assert_eq!(percentile_ms(&samples, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_pass_produces_sane_numbers() {
        let cfg = PassConfig {
            io_model: IoModel::default(),
            held_connections: 8,
            traffic_threads: 2,
            requests_per_thread: 13,
            workers: 1,
        };
        let p = run_pass(&cfg);
        assert_eq!(p.requests, 26);
        assert_eq!(p.completed + p.errors, 26);
        assert_eq!(p.errors, 0, "no traffic request should fail outright");
        assert!(p.wall_s > 0.0);
        assert!(p.jobs_per_sec > 0.0);
        assert!(p.p50_ms <= p.p99_ms && p.p99_ms <= p.max_ms);
        assert!(p.connections_total >= 8);
        let json = to_json(&[p]);
        assert!(json.contains("\"bench\": \"serve\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
