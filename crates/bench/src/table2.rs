//! Table 2 reproduction: throughput and power of the §5 suite under M1,
//! Flamel, and FACT (throughput mode), and M1 vs FACT (power mode).

use fact_core::{
    flamel, geomean_ratio, m1, optimize, render_table2, suite, FactConfig, Objective, SearchConfig,
    Table2Row, TransformLibrary,
};
use fact_estim::{evaluate_power_mode, markov_of, section5_library};
use fact_sched::SchedOptions;

/// Everything the Table 2 run produces.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// One row per benchmark, paper layout.
    pub rows: Vec<Table2Row>,
    /// Geometric-mean throughput ratio FACT / M1.
    pub fact_vs_m1: Option<f64>,
    /// Geometric-mean throughput ratio FACT / Flamel.
    pub fact_vs_flamel: Option<f64>,
    /// Mean power saving of FACT vs M1, in percent.
    pub power_saving_pct: Option<f64>,
    /// Per-row notes (applied transformations, failures).
    pub notes: Vec<String>,
}

fn search_config(quick: bool) -> SearchConfig {
    if quick {
        SearchConfig {
            max_moves: 2,
            in_set_size: 2,
            max_rounds: 3,
            max_evaluations: 60,
            ..Default::default()
        }
    } else {
        SearchConfig {
            max_moves: 3,
            in_set_size: 3,
            max_rounds: 5,
            max_evaluations: 200,
            ..Default::default()
        }
    }
}

/// Runs the whole Table 2 experiment. `quick` shrinks the search budget
/// (used by integration tests); the bench target runs the full budget.
pub fn run(quick: bool) -> Table2Result {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    let sched = SchedOptions::default();
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    for b in suite(&lib) {
        let mut row = Table2Row {
            circuit: b.name.to_string(),
            clk_ns: sched.clock_ns,
            t_m1: None,
            t_flamel: None,
            t_fact: None,
            p_m1: None,
            p_fact: None,
        };
        let mut note = String::new();

        let m1_res = m1(&b.function, &lib, &rules, &b.allocation, &b.traces, &sched);
        let base_cycles = match &m1_res {
            Ok(r) => {
                row.t_m1 = Some(r.estimate.throughput);
                markov_of(&r.schedule)
                    .map(|m| m.average_schedule_length)
                    .unwrap_or(f64::NAN)
            }
            Err(e) => {
                note.push_str(&format!("M1 failed: {e}; "));
                f64::NAN
            }
        };

        match flamel(&b.function, &lib, &rules, &b.allocation, &b.traces, &sched) {
            Ok(r) => {
                row.t_flamel = Some(r.estimate.throughput);
                if !r.applied.is_empty() {
                    note.push_str(&format!("Flamel: {:?}; ", r.applied));
                }
            }
            Err(e) => note.push_str(&format!("Flamel failed: {e}; ")),
        }

        let t_cfg = FactConfig {
            objective: Objective::Throughput,
            search: search_config(quick),
            ..Default::default()
        };
        match optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            &t_cfg,
        ) {
            Ok(r) => {
                row.t_fact = Some(r.estimate.throughput);
                if !r.applied.is_empty() {
                    note.push_str(&format!("FACT-T: {:?}; ", r.applied));
                }
            }
            Err(e) => note.push_str(&format!("FACT-T failed: {e}; ")),
        }

        // Power columns: M1's power at its own schedule (no scaling
        // headroom) vs FACT's power-mode result against the same base.
        if let Ok(r) = &m1_res {
            if base_cycles.is_finite() {
                if let Ok(p) = evaluate_power_mode(&r.schedule, &lib, sched.clock_ns, base_cycles) {
                    row.p_m1 = Some(p.power);
                }
            }
        }
        let p_cfg = FactConfig {
            objective: Objective::Power,
            search: search_config(quick),
            ..Default::default()
        };
        match optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            &p_cfg,
        ) {
            Ok(r) => {
                row.p_fact = Some(r.estimate.power);
                note.push_str(&format!("FACT-P vdd {:.2} V", r.estimate.vdd));
            }
            Err(e) => note.push_str(&format!("FACT-P failed: {e}")),
        }

        rows.push(row);
        notes.push(note);
    }

    let fact_vs_m1 = geomean_ratio(&rows.iter().map(|r| (r.t_fact, r.t_m1)).collect::<Vec<_>>());
    let fact_vs_flamel = geomean_ratio(
        &rows
            .iter()
            .map(|r| (r.t_fact, r.t_flamel))
            .collect::<Vec<_>>(),
    );
    let savings: Vec<f64> = rows
        .iter()
        .filter_map(|r| match (r.p_m1, r.p_fact) {
            (Some(m), Some(f)) if m > 0.0 => Some(100.0 * (1.0 - f / m)),
            _ => None,
        })
        .collect();
    let power_saving_pct = if savings.is_empty() {
        None
    } else {
        Some(savings.iter().sum::<f64>() / savings.len() as f64)
    };

    Table2Result {
        rows,
        fact_vs_m1,
        fact_vs_flamel,
        power_saving_pct,
        notes,
    }
}

/// Renders the full report, including the Table 3 allocation echo and the
/// paper-style improvement summary.
pub fn report(result: &Table2Result) -> String {
    let mut s = String::new();
    s.push_str("Table 2 — throughput (cycles^-1 x 1000) and power (model units)\n");
    s.push_str(&render_table2(&result.rows));
    s.push('\n');
    if let Some(g) = result.fact_vs_m1 {
        s.push_str(&format!(
            "FACT vs M1 throughput (geomean):     {g:.2}x  (paper: 2.7x)\n"
        ));
    }
    if let Some(g) = result.fact_vs_flamel {
        s.push_str(&format!(
            "FACT vs Flamel throughput (geomean): {g:.2}x  (paper: 2.1x)\n"
        ));
    }
    if let Some(p) = result.power_saving_pct {
        s.push_str(&format!(
            "FACT power saving vs M1 (mean):      {p:.1}%  (paper: 62.1%)\n"
        ));
    }
    s.push_str("\nPer-benchmark notes:\n");
    for (row, note) in result.rows.iter().zip(&result.notes) {
        s.push_str(&format!("  {:<8} {}\n", row.circuit, note));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_preserves_paper_ordering() {
        let r = run(true);
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            let (m1, fl, fact) = (
                row.t_m1.expect("m1 ran"),
                row.t_flamel.expect("flamel ran"),
                row.t_fact.expect("fact ran"),
            );
            // The paper's ordering: FACT >= Flamel >= M1 (small slack for
            // search stochasticity under the quick budget).
            assert!(
                fact >= 0.95 * fl,
                "{}: fact {fact} vs flamel {fl}",
                row.circuit
            );
            assert!(fl >= 0.95 * m1, "{}: flamel {fl} vs m1 {m1}", row.circuit);
        }
        // FACT wins overall.
        assert!(r.fact_vs_m1.unwrap() > 1.2);
        // And saves power on average.
        assert!(r.power_saving_pct.unwrap() > 20.0);
    }
}
