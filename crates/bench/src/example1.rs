//! Example 1 / Table 1 reproduction: the §2.2 power-estimation walkthrough
//! on TEST1 with the Table 1 component library.
//!
//! The paper's numbers for its Wavesched schedule: state probabilities
//! (P_S5 = 0.404 etc.), average schedule length 119.11 cycles (transformed)
//! vs 151.30 (baseline), total energy 665.58·Vdd², and supply scaling
//! 5 V → 4.29 V giving 80.96/cycle_time power. Our scheduler is not
//! bit-identical, so the driver reports our values side by side with the
//! paper's and checks the *relationships*: the Vdd-scaling equation itself
//! is exact (4.29 V for the paper's 119.11/151.30 ratio).

use fact_core::suite::TEST1_SRC;
use fact_estim::{analyze, evaluate, markov_of, scale_voltage, table1_library, Estimate};
use fact_lang::compile;
use fact_sched::{schedule, Allocation, SchedOptions, ScheduleResult};
use fact_sim::{generate, profile, InputSpec};

/// The walkthrough's measured quantities.
#[derive(Clone, Debug)]
pub struct Example1Result {
    /// Average schedule length with the full scheduler (the "transformed"
    /// side of the paper's comparison).
    pub len_full: f64,
    /// Average schedule length with scheduler optimizations off (the
    /// "base" case).
    pub len_base: f64,
    /// Scaled supply voltage from our lengths.
    pub vdd_scaled: f64,
    /// Scaled supply voltage from the *paper's* lengths (must be 4.29 V).
    pub vdd_paper: f64,
    /// Estimate of the full schedule at 5 V.
    pub estimate: Estimate,
    /// The full schedule (for printing).
    pub schedule: ScheduleResult,
    /// State-probability listing of the full schedule.
    pub state_probs: Vec<(String, f64)>,
}

/// Runs the Example 1 walkthrough.
///
/// # Panics
/// Panics if TEST1 fails to compile or schedule (a bug, covered by tests).
pub fn run() -> Example1Result {
    let f = compile(TEST1_SRC).expect("TEST1 compiles");
    let (lib, rules) = table1_library();
    let mut alloc = Allocation::new();
    // Table 1 allocation: 2 comp1, 2 cla1, 1 incr1, 1 w_mult1.
    alloc.set(lib.by_name("comp1").unwrap(), 2);
    alloc.set(lib.by_name("cla1").unwrap(), 2);
    alloc.set(lib.by_name("incr1").unwrap(), 1);
    alloc.set(lib.by_name("w_mult1").unwrap(), 1);

    // Example 1's probabilities: the while closes w.p. 0.98 (trip count
    // 49), the if is taken w.p. 0.37 (c1 = 18 of 49).
    let traces = generate(
        &[
            ("c1".to_string(), InputSpec::Constant(18)),
            ("c2".to_string(), InputSpec::Constant(49)),
        ],
        4,
        7,
    );
    let prof = profile(&f, &traces);

    let full = SchedOptions::default();
    let base = SchedOptions {
        if_convert: false,
        rotate: false,
        pipeline: false,
        concurrent: false,
        ..Default::default()
    };
    let sr_full = schedule(&f, &lib, &rules, &alloc, &prof, &full).expect("schedules");
    let sr_base = schedule(&f, &lib, &rules, &alloc, &prof, &base).expect("schedules");
    let len_full = markov_of(&sr_full)
        .expect("analyzable")
        .average_schedule_length;
    let len_base = markov_of(&sr_base)
        .expect("analyzable")
        .average_schedule_length;

    let estimate = evaluate(&sr_full, &lib, full.clock_ns).expect("estimable");
    let vdd_scaled = scale_voltage(len_base, len_full);
    let vdd_paper = scale_voltage(151.30, 119.11);

    // State probabilities in the paper's style, from the pure Markov
    // analysis (reference [10]).
    let markov = analyze(&sr_full.stg).expect("markov");
    let mut state_probs: Vec<(String, f64)> = sr_full
        .stg
        .state_ids()
        .filter(|&s| s != sr_full.stg.done())
        .map(|s| {
            (
                format!(
                    "{s} [{}]",
                    sr_full.stg.state(s).name.clone().unwrap_or_default()
                ),
                markov.prob(s),
            )
        })
        .collect();
    state_probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    Example1Result {
        len_full,
        len_base,
        vdd_scaled,
        vdd_paper,
        estimate,
        schedule: sr_full,
        state_probs,
    }
}

/// Renders the walkthrough report.
pub fn report(r: &Example1Result) -> String {
    let mut s = String::new();
    s.push_str("Example 1 — power estimation walkthrough on TEST1 (Table 1 library)\n\n");
    s.push_str(&format!(
        "average schedule length (full scheduler): {:>8.2} cycles   (paper: 119.11)\n",
        r.len_full
    ));
    s.push_str(&format!(
        "average schedule length (base schedule):  {:>8.2} cycles   (paper: 151.30)\n",
        r.len_base
    ));
    s.push_str(&format!(
        "scaled Vdd from our lengths:              {:>8.2} V\n",
        r.vdd_scaled
    ));
    s.push_str(&format!(
        "scaled Vdd from the paper's lengths:      {:>8.2} V        (paper: 4.29)\n\n",
        r.vdd_paper
    ));
    s.push_str(&format!(
        "energy per execution: {:.2} Vdd^2 units   (paper: 665.58)\n",
        r.estimate.energy_vdd2
    ));
    s.push_str("energy breakdown:\n");
    let mut fus: Vec<_> = r.estimate.breakdown.per_fu.iter().collect();
    fus.sort_by(|a, b| a.0.cmp(b.0));
    for (name, e) in fus {
        s.push_str(&format!("  {name:<8} {e:>10.2}\n"));
    }
    s.push_str(&format!(
        "  {:<8} {:>10.2}\n  {:<8} {:>10.2}\n  {:<8} {:>10.2}\n",
        "regs",
        r.estimate.breakdown.registers,
        "mems",
        r.estimate.breakdown.memories,
        "overhead",
        r.estimate.breakdown.overhead
    ));
    s.push_str("\nstate probabilities (hottest first):\n");
    for (name, p) in r.state_probs.iter().take(8) {
        s.push_str(&format!("  {name:<28} {p:.3}\n"));
    }
    s.push('\n');
    s.push_str("schedule (Figure 1(c) style):\n");
    s.push_str(&r.schedule.stg.pretty(&r.schedule.function));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_reproduces_paper_relationships() {
        let r = run();
        // The Vdd-scaling equation is exact for the paper's inputs.
        assert!((r.vdd_paper - 4.29).abs() < 0.01, "{}", r.vdd_paper);
        // Our lengths are in the paper's regime (tens-to-hundreds of
        // cycles for 49 iterations) and ordered correctly.
        assert!(r.len_full <= r.len_base);
        assert!(r.len_full > 40.0 && r.len_base < 500.0);
        // The full schedule saves cycles, so voltage scales below 5 V.
        if r.len_full < r.len_base - 1e-6 {
            assert!(r.vdd_scaled < 5.0);
            assert!(r.vdd_scaled > 1.0);
        }
        // Energy is positive with every component populated.
        assert!(r.estimate.energy_vdd2 > 0.0);
        assert!(r.estimate.breakdown.registers > 0.0);
        assert!(r.estimate.breakdown.memories > 0.0);
        assert!(r.estimate.breakdown.overhead > 0.0);
        // State probabilities sum to 1.
        let total: f64 = r.state_probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "{total}");
    }
}
