//! Figure 2 / Example 2 reproduction: Test2's concurrent-loop schedule
//! before and after the scheduling-guided rewrite of L3's body, plus the
//! Figure 3 per-cycle resource-utilization view.
//!
//! The paper reports 510 → 408 cycles (1.25×) for its trip counts; the
//! mechanism — L3 bottlenecked on adders while running beside L1, freed by
//! rewriting `(y1+y2)-(y3+y4)` as `(y1-y3)+(y2-y4)` — is what this driver
//! demonstrates, with the phase structure of Figure 2(b) visible in the
//! STG.

use fact_core::{optimize, suite, FactConfig, Objective, SearchConfig, TransformLibrary};
use fact_estim::{markov_of, section5_library};
use fact_sched::SchedOptions;

/// The experiment's measurements.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// Untransformed (M1) average schedule length.
    pub len_before: f64,
    /// FACT-transformed average schedule length.
    pub len_after: f64,
    /// Improvement factor.
    pub speedup: f64,
    /// Transformations FACT applied.
    pub applied: Vec<String>,
    /// Number of concurrent phases in the transformed schedule.
    pub phases_after: usize,
    /// Pretty STG of the transformed schedule (Figure 2(c) analogue).
    pub stg_after: String,
    /// Utilization rows of the transformed schedule (Figure 3 analogue):
    /// `(state, unit, expected ops per cycle)`.
    pub utilization: Vec<(String, String, f64)>,
}

/// Runs the Figure 2 experiment.
///
/// # Panics
/// Panics if Test2 fails to schedule (covered by tests).
pub fn run(quick: bool) -> Fig2Result {
    let (lib, rules) = section5_library();
    let b = suite(&lib)
        .into_iter()
        .find(|b| b.name == "Test2")
        .expect("suite has Test2");
    let tlib = TransformLibrary::full();
    let cfg = FactConfig {
        objective: Objective::Throughput,
        search: if quick {
            SearchConfig {
                max_moves: 2,
                in_set_size: 2,
                max_rounds: 3,
                max_evaluations: 80,
                ..Default::default()
            }
        } else {
            SearchConfig::default()
        },
        sched: SchedOptions::default(),
        ..Default::default()
    };
    let r = optimize(
        &b.function,
        &lib,
        &rules,
        &b.allocation,
        &b.traces,
        &tlib,
        &cfg,
    )
    .expect("Test2 optimizes");

    let len_before = r.baseline.average_schedule_length;
    let len_after = markov_of(&r.schedule)
        .expect("analyzable")
        .average_schedule_length;
    let phases_after = r
        .schedule
        .stg
        .state_ids()
        .filter(|&s| {
            r.schedule
                .stg
                .state(s)
                .name
                .as_deref()
                .is_some_and(|n| n.contains("phase"))
        })
        .count();
    let utilization = r
        .schedule
        .stg
        .utilization_table(&r.schedule.function, &r.schedule.selection, &lib)
        .into_iter()
        .map(|(s, unit, w)| {
            (
                format!(
                    "{s} [{}]",
                    r.schedule.stg.state(s).name.clone().unwrap_or_default()
                ),
                unit,
                w,
            )
        })
        .collect();

    Fig2Result {
        len_before,
        len_after,
        speedup: len_before / len_after,
        applied: r.applied.clone(),
        phases_after,
        stg_after: r.schedule.stg.pretty(&r.schedule.function),
        utilization,
    }
}

/// Renders the figure report.
pub fn report(r: &Fig2Result) -> String {
    let mut s = String::new();
    s.push_str("Figure 2 / Example 2 — Test2 concurrent-loop schedules\n\n");
    s.push_str(&format!(
        "untransformed schedule length: {:>8.1} cycles   (paper: 510)\n",
        r.len_before
    ));
    s.push_str(&format!(
        "transformed schedule length:   {:>8.1} cycles   (paper: 408)\n",
        r.len_after
    ));
    s.push_str(&format!(
        "speedup:                       {:>8.2}x        (paper: 1.25x)\n\n",
        r.speedup
    ));
    s.push_str(&format!("applied transformations: {:?}\n", r.applied));
    s.push_str(&format!(
        "concurrent phases (Figure 2(b)'s n1/n2/n3): {}\n\n",
        r.phases_after
    ));
    s.push_str("transformed STG:\n");
    s.push_str(&r.stg_after);
    s.push_str("\nFigure 3 — expected unit usage per cycle:\n");
    for (state, unit, w) in &r.utilization {
        s.push_str(&format!("  {state:<24} {unit:<6} {w:>6.2}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test2_speeds_up_via_neutral_rewrite() {
        let r = run(true);
        // The paper's shape: a real speedup from an op-count-neutral
        // rewrite, visible only to scheduling-guided selection.
        assert!(r.speedup > 1.15, "speedup {}", r.speedup);
        assert!(r.speedup < 2.5, "speedup {} suspiciously large", r.speedup);
        assert!(
            r.applied.iter().any(|d| d.contains("sum-of-differences")),
            "{:?}",
            r.applied
        );
        // The phase structure of Figure 2(b) exists.
        assert!(r.phases_after >= 3, "phases {}", r.phases_after);
        // Utilization rows cover the subtracters after the rewrite.
        assert!(r.utilization.iter().any(|(_, u, _)| u == "sb1"));
    }
}
