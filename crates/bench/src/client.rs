//! A retrying `factd` client implementing the documented backoff
//! contract.
//!
//! The daemon's overload replies (`error:"busy"`, `error:"shed"`) are
//! explicitly retryable and carry a `retry_after_ms` hint — the server's
//! own estimate of when a queue slot frees up. This client implements
//! the other half of that contract: on a retryable reply it waits the
//! hinted time (falling back to exponential backoff when no hint is
//! present), adds deterministic jitter so a fleet of clients does not
//! retry in lockstep, and resubmits — up to a bounded attempt budget.
//!
//! The jitter stream comes from [`fact_prng::splitmix64`], so a given
//! policy seed produces a reproducible backoff schedule — load
//! experiments built on this client are replayable like everything else
//! in the reproduction.

use fact_prng::splitmix64;
use fact_serve::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// Backoff policy for [`RetryingClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total submission attempts before giving up (minimum 1).
    pub max_attempts: u32,
    /// First backoff when the server sends no `retry_after_ms` hint;
    /// doubles per retry.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, hinted or not.
    pub max_backoff_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 50,
            max_backoff_ms: 10_000,
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based), given the
    /// server's optional `retry_after_ms` hint and the jitter state.
    ///
    /// The hint (or the exponential fallback) is scaled by a jitter
    /// factor in `[0.5, 1.5)` so concurrent clients spread out instead
    /// of stampeding the freed slot, then clamped to `max_backoff_ms`.
    pub fn backoff_ms(&self, retry: u32, hint: Option<u64>, jitter_state: &mut u64) -> u64 {
        let base = match hint {
            Some(ms) => ms.max(1),
            None => self
                .base_backoff_ms
                .max(1)
                .saturating_mul(1u64 << retry.min(20)),
        };
        // Uniform jitter factor in [0.5, 1.5) from the top 53 bits.
        let frac = (splitmix64(jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = (base as f64 * (0.5 + frac)) as u64;
        jittered.clamp(1, self.max_backoff_ms.max(1))
    }
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(std::io::Error),
    /// The reply was not a parseable JSON line.
    Protocol(String),
    /// A non-retryable server error reply (`compile`, `timeout`, …).
    Server {
        /// The reply's `error` code.
        code: String,
        /// The reply's human-readable `message`.
        message: String,
    },
    /// Every attempt was answered with a retryable overload reply.
    Exhausted {
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Exhausted { attempts } => {
                write!(f, "server still overloaded after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful exchange, with its retry telemetry.
#[derive(Debug)]
pub struct Exchange {
    /// The non-error (or non-retryable-error) reply.
    pub reply: Value,
    /// Submission attempts used (1 = no retries).
    pub attempts: u32,
    /// Total time spent backing off, in milliseconds.
    pub backed_off_ms: u64,
}

/// A `factd` client that retries `busy`/`shed` replies with hinted,
/// jittered backoff. One connection per attempt (the daemon replies
/// `busy` and keeps the connection open, but a fresh connect per retry
/// also exercises the accept path under load).
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    jitter_state: u64,
}

impl RetryingClient {
    /// A client for the daemon at `addr` under `policy`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryingClient {
        let jitter_state = policy.seed;
        RetryingClient {
            addr,
            policy,
            jitter_state,
        }
    }

    /// Sends one request line, retrying overload replies per the policy.
    pub fn request(&mut self, line: &str) -> Result<Exchange, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut backed_off_ms = 0u64;
        for attempt in 0..attempts {
            let reply = self.exchange_once(line)?;
            match retryable_hint(&reply) {
                None => {
                    return match server_error(&reply) {
                        Some((code, message)) => Err(ClientError::Server { code, message }),
                        None => Ok(Exchange {
                            reply,
                            attempts: attempt + 1,
                            backed_off_ms,
                        }),
                    }
                }
                Some(hint) if attempt + 1 < attempts => {
                    let ms = self
                        .policy
                        .backoff_ms(attempt, hint, &mut self.jitter_state);
                    backed_off_ms += ms;
                    thread::sleep(Duration::from_millis(ms));
                }
                Some(_) => {} // out of attempts; fall through
            }
        }
        Err(ClientError::Exhausted { attempts })
    }

    fn exchange_once(&self, line: &str) -> Result<Value, ClientError> {
        let mut stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
        stream.write_all(line.as_bytes()).map_err(ClientError::Io)?;
        stream.write_all(b"\n").map_err(ClientError::Io)?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(ClientError::Io)?;
        if reply.is_empty() {
            return Err(ClientError::Protocol("connection closed mid-reply".into()));
        }
        parse(reply.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }
}

/// `Some(hint)` when the reply is a retryable overload error; the inner
/// option is the server's `retry_after_ms`, if present.
fn retryable_hint(reply: &Value) -> Option<Option<u64>> {
    let code = reply.get("error").and_then(Value::as_str)?;
    matches!(code, "busy" | "shed").then(|| {
        reply
            .get("retry_after_ms")
            .and_then(Value::as_i64)
            .map(|ms| ms.max(0) as u64)
    })
}

/// `Some((code, message))` when the reply is a non-retryable error.
fn server_error(reply: &Value) -> Option<(String, String)> {
    let code = reply.get("error").and_then(Value::as_str)?;
    let message = reply
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    Some((code.to_string(), message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_the_server_hint() {
        let policy = RetryPolicy {
            max_backoff_ms: 60_000,
            ..RetryPolicy::default()
        };
        let mut state = 42u64;
        for retry in 0..4 {
            let ms = policy.backoff_ms(retry, Some(1000), &mut state);
            // Hint 1000 ms with jitter in [0.5, 1.5): the exponential
            // fallback never applies.
            assert!((500..1500).contains(&ms), "retry {retry}: {ms}");
        }
    }

    #[test]
    fn backoff_without_hint_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            ..RetryPolicy::default()
        };
        let mut state = 7u64;
        let b0 = policy.backoff_ms(0, None, &mut state); // ~100
        let b3 = policy.backoff_ms(3, None, &mut state); // ~800
        let b9 = policy.backoff_ms(9, None, &mut state); // capped
        assert!((50..150).contains(&b0), "{b0}");
        assert!((400..1200).contains(&b3), "{b3}");
        assert_eq!(b9, 2_000);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_spreads_clients() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64| -> Vec<u64> {
            let mut state = seed;
            (0..8)
                .map(|r| policy.backoff_ms(r, Some(500), &mut state))
                .collect()
        };
        assert_eq!(schedule(1), schedule(1), "same seed, same schedule");
        assert_ne!(schedule(1), schedule(2), "different seeds must diverge");
    }

    #[test]
    fn classifies_replies() {
        let busy =
            parse(r#"{"type":"error","error":"busy","message":"m","retry_after_ms":250}"#).unwrap();
        assert_eq!(retryable_hint(&busy), Some(Some(250)));
        let shed = parse(r#"{"type":"error","error":"shed","message":"m"}"#).unwrap();
        assert_eq!(retryable_hint(&shed), Some(None));
        let compile = parse(r#"{"type":"error","error":"compile","message":"m"}"#).unwrap();
        assert_eq!(retryable_hint(&compile), None);
        assert_eq!(server_error(&compile), Some(("compile".into(), "m".into())));
        let ok = parse(r#"{"type":"result","status":"ok"}"#).unwrap();
        assert_eq!(retryable_hint(&ok), None);
        assert_eq!(server_error(&ok), None);
    }

    #[test]
    fn retries_through_a_saturated_daemon() {
        use fact_serve::{FaultSpec, Server, ServerConfig};

        // One worker stalled 1.5 s by an injected delay, one queue slot:
        // the third concurrent job bounces with `busy` and must succeed
        // on a later attempt through the backoff loop.
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 1,
            stats_interval_s: 0,
            log: false,
            faults: FaultSpec::parse("seed=13,slow=1:1,slow_ms=1500").unwrap(),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = thread::spawn(move || server.run().unwrap());

        let job = |id: &str| -> String {
            format!(
                concat!(
                    r#"{{"type":"optimize","id":"{}","source":"proc f(n) {{ out y = n + 1; }}","#,
                    r#""alloc":{{"a1":1,"i1":1,"sb1":1}},"#,
                    r#""traces":{{"n":2,"inputs":{{"n":{{"const":3}}}}}},"#,
                    r#""search":{{"max_evaluations":10}}}}"#
                ),
                id
            )
        };
        // Fill the worker and the queue slot from background threads.
        let fillers: Vec<_> = (0..2)
            .map(|i| {
                let line = job(&format!("fill{i}"));
                let mut c = RetryingClient::new(addr, RetryPolicy::default());
                thread::spawn(move || c.request(&line).unwrap())
            })
            .collect();
        thread::sleep(Duration::from_millis(400));

        let mut client = RetryingClient::new(
            addr,
            RetryPolicy {
                max_attempts: 20,
                base_backoff_ms: 100,
                max_backoff_ms: 500,
                seed: 99,
            },
        );
        let exchange = client.request(&job("retried")).unwrap();
        assert_eq!(
            exchange.reply.get("status").and_then(Value::as_str),
            Some("ok")
        );
        assert!(exchange.attempts >= 2, "expected at least one busy bounce");
        assert!(exchange.backed_off_ms > 0);

        for f in fillers {
            let ex = f.join().unwrap();
            assert_eq!(ex.reply.get("status").and_then(Value::as_str), Some("ok"));
        }
        handle.shutdown();
        join.join().unwrap();
    }
}
