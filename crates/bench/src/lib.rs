//! # fact-bench — reproduction harness for every table and figure
//!
//! Each paper artifact has a driver here and a `cargo bench` target that
//! prints it:
//!
//! | Paper artifact | Driver | Bench target |
//! |---|---|---|
//! | Table 2 (+ Table 3 inputs) | [`table2`] | `table2` |
//! | Table 1 + Example 1 walkthrough | [`example1`] | `example1_power` |
//! | Figure 1 (TEST1 CDFG + STG) | [`fig1`] | `fig1_test1` |
//! | Figures 2–3 + Example 2 (Test2) | [`fig2`] | `fig2_test2` |
//! | Figure 4 + Example 3 (cross-BB) | [`fig4`] | `fig4_crossbb` |
//! | Design-choice ablations | [`ablation`] | `ablation` |
//! | Resource-sensitivity sweep | [`sweep`] | `sweep` |
//!
//! The drivers return structured results so integration tests can assert
//! the paper's qualitative findings (who wins, rough factors) without
//! parsing printed text.

#![warn(missing_docs)]

pub mod ablation;
pub mod client;
pub mod example1;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod pareto_perf;
pub mod search_perf;
pub mod serve_perf;
pub mod sim_perf;
pub mod sweep;
pub mod table2;
