//! Pareto-frontier measurement: curve quality and search throughput
//! over the §5 suite.
//!
//! For each benchmark this runs the Pareto-mode pipeline
//! ([`fact_core::optimize_pareto_with`]) and records the frontier size,
//! the archive occupancy, a hypervolume proxy (dominated area against a
//! reference point at twice the baseline's energy and latency — a
//! stable, unitless "how much of the tradeoff box did we cover"
//! number), and evaluations/sec. The `pareto_perf` bench target writes
//! the result as `BENCH_pareto.json` so successive PRs can be compared
//! number-for-number.
//!
//! Std-only by design (the offline build has no serde/criterion): the
//! JSON is emitted by hand from a flat result struct.

use fact_core::{
    hypervolume, optimize_pareto_with, suite, EvalCache, FactConfig, OptimizeHooks, ParetoPoint,
    TransformLibrary,
};
use fact_estim::section5_library;
use std::time::Instant;

/// Pareto measurement of one suite benchmark.
#[derive(Clone, Debug)]
pub struct ParetoSuitePerf {
    /// Benchmark name (Table 2 row).
    pub name: &'static str,
    /// Nondominated (energy, latency, Vdd) design points on the final
    /// curve.
    pub frontier: usize,
    /// Structural designs held in the archive at the end of the run.
    pub archive_len: usize,
    /// Candidate evaluations performed by the search.
    pub evaluated: usize,
    /// Dominated area between the frontier and the reference point at
    /// `(2 × baseline energy, 2 × baseline latency)`, normalized by that
    /// box's area (so 0..1, bigger is better).
    pub hypervolume: f64,
    /// Wall-clock time of the whole run, seconds.
    pub wall_s: f64,
    /// `evaluated / wall_s`.
    pub evals_per_sec: f64,
}

/// One full measurement pass.
#[derive(Clone, Debug)]
pub struct ParetoPerf {
    /// Label for the configuration measured.
    pub mode: String,
    /// Evaluation budget per benchmark (`SearchConfig::max_evaluations`).
    pub budget: usize,
    /// Per-benchmark measurements.
    pub suites: Vec<ParetoSuitePerf>,
}

impl ParetoPerf {
    /// Total evaluations across all suites.
    pub fn total_evaluated(&self) -> usize {
        self.suites.iter().map(|s| s.evaluated).sum()
    }

    /// Total wall time across all suites, seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.suites.iter().map(|s| s.wall_s).sum()
    }

    /// Aggregate evaluations/sec (total evals over total wall time).
    pub fn total_evals_per_sec(&self) -> f64 {
        let w = self.total_wall_s();
        if w > 0.0 {
            self.total_evaluated() as f64 / w
        } else {
            0.0
        }
    }
}

/// Runs the Pareto measurement, labeled `mode` in the report. With
/// `only = Some(name)` the suite is restricted to that benchmark (the
/// smoke gate runs Test2 alone).
///
/// Each benchmark gets a fresh [`EvalCache`] so numbers do not depend
/// on measurement order.
pub fn run_with(mode: &str, config: &FactConfig, only: Option<&str>) -> ParetoPerf {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    let mut suites = Vec::new();
    for b in suite(&lib) {
        if only.is_some_and(|name| name != b.name) {
            continue;
        }
        let cache = EvalCache::default();
        let hooks = OptimizeHooks {
            cache: Some(&cache),
            stop: None,
            timers: None,
        };
        let t0 = Instant::now();
        let r = optimize_pareto_with(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            config,
            hooks,
        );
        let wall_s = t0.elapsed().as_secs_f64();
        let (frontier, archive_len, evaluated, hv) = match &r {
            Ok(r) => {
                // Baseline energy at its own supply voltage, matching
                // the units of the frontier points' `energy`.
                let base_energy = r.baseline.energy_vdd2 * r.baseline.vdd * r.baseline.vdd;
                let reference = ParetoPoint {
                    energy: 2.0 * base_energy,
                    latency: 2.0 * r.baseline.average_schedule_length,
                };
                let points: Vec<ParetoPoint> = r
                    .frontier
                    .iter()
                    .map(|p| ParetoPoint {
                        energy: p.energy,
                        latency: p.latency_cycles,
                    })
                    .collect();
                let box_area = reference.energy * reference.latency;
                let hv = if box_area > 0.0 {
                    hypervolume(&points, &reference) / box_area
                } else {
                    0.0
                };
                (r.frontier.len(), r.archive_len, r.evaluated, hv)
            }
            Err(_) => (0, 0, 0, 0.0),
        };
        suites.push(ParetoSuitePerf {
            name: b.name,
            frontier,
            archive_len,
            evaluated,
            hypervolume: hv,
            wall_s,
            evals_per_sec: if wall_s > 0.0 {
                evaluated as f64 / wall_s
            } else {
                0.0
            },
        });
    }
    ParetoPerf {
        mode: mode.to_string(),
        budget: config.search.max_evaluations,
        suites,
    }
}

/// The standard measurement configuration: Pareto objective, the given
/// per-benchmark evaluation budget, single-threaded so evals/sec
/// reflects per-candidate cost rather than core count (the frontier
/// itself is identical for any thread count).
pub fn standard_config(budget: usize) -> FactConfig {
    let mut config = FactConfig {
        objective: fact_core::Objective::Pareto,
        ..FactConfig::default()
    };
    config.search.max_evaluations = budget;
    config.search.threads = 1;
    config
}

/// Renders one or more measurement passes as a JSON document.
pub fn to_json(passes: &[ParetoPerf]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pareto\",\n  \"passes\": [\n");
    for (pi, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"mode\": \"{}\",\n      \"budget\": {},\n      \"suites\": [\n",
            p.mode, p.budget
        ));
        for (i, s) in p.suites.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"frontier\": {}, \"archive_len\": {}, \
                 \"evaluated\": {}, \"hypervolume\": {:.4}, \"wall_s\": {:.4}, \
                 \"evals_per_sec\": {:.1}}}{}\n",
                s.name,
                s.frontier,
                s.archive_len,
                s.evaluated,
                s.hypervolume,
                s.wall_s,
                s.evals_per_sec,
                if i + 1 < p.suites.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ],\n      \"total_evaluated\": {},\n      \"total_wall_s\": {:.4},\n      \
             \"total_evals_per_sec\": {:.1}\n    }}{}\n",
            p.total_evaluated(),
            p.total_wall_s(),
            p.total_evals_per_sec(),
            if pi + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_numbers() {
        let p = run_with("smoke", &standard_config(60), Some("Test2"));
        assert_eq!(p.suites.len(), 1);
        let s = &p.suites[0];
        assert_eq!(s.name, "Test2");
        assert!(s.frontier > 0);
        assert!(s.archive_len > 0);
        // The baseline itself sits strictly inside the 2×-baseline
        // reference box, so a nonempty frontier has positive volume.
        assert!(s.hypervolume > 0.0 && s.hypervolume <= 1.0);
        assert!(p.total_evaluated() > 0);
        let json = to_json(&[p]);
        assert!(json.contains("\"bench\": \"pareto\""));
        assert!(json.contains("\"mode\": \"smoke\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
