//! Figure 4 / Example 3 reproduction: applying distributivity *across*
//! basic blocks through joins.
//!
//! The CDFG of Figure 4(a): two joins `J1`, `J2` feed a subtraction; on
//! one thread they carry `x1·x2` and `x1·x3`, on the other `x4` and `x5`
//! (mutually exclusive). Under one multiplier and two subtracters, the
//! original takes 3 cycles on the multiply thread (two serialized
//! multiplies, then the subtract); after sinking the subtraction through
//! the joins and factoring, the thread computes `x1·(x2−x3)` in 2 cycles.

use fact_estim::{evaluate, section5_library};
use fact_ir::Function;
use fact_lang::compile;
use fact_sched::{schedule, Allocation, SchedOptions};
use fact_sim::{check_equivalence, generate, profile, InputSpec, TraceSet};
use fact_xform::{Region, Transform};

/// Source of the Figure 4(a) behavior.
pub const FIG4_SRC: &str = r#"
proc fig4(x1, x2, x3, x4, x5, c) {
    var j1 = 0;
    var j2 = 0;
    if (c) {
        j1 = x1 * x2;
        j2 = x1 * x3;
    } else {
        j1 = x4;
        j2 = x5;
    }
    out r = j1 - j2;
}
"#;

/// The experiment's measurements.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// Cycles of the multiply thread before transformation.
    pub cycles_before: f64,
    /// Cycles of the multiply thread after sinking + factoring.
    pub cycles_after: f64,
    /// Multiplications remaining in the transformed CDFG.
    pub muls_after: usize,
    /// The transformed CDFG (for printing).
    pub transformed: Function,
    /// Number of equivalence vectors checked.
    pub equivalence_checked: usize,
}

fn traces() -> TraceSet {
    let names = ["x1", "x2", "x3", "x4", "x5"];
    let mut specs: Vec<(String, InputSpec)> = names
        .iter()
        .map(|n| (n.to_string(), InputSpec::Uniform { lo: -20, hi: 20 }))
        .collect();
    // Bias toward the multiply thread (the paper's "C occurs with high
    // probability" premise). `c` is used raw as the join-steering token,
    // so the condition costs no datapath cycle (as in Figure 4(a)).
    specs.push(("c".to_string(), InputSpec::Uniform { lo: 0, hi: 9 }));
    generate(&specs, 120, 404)
}

/// Thread-conditional average cycles: schedules `f` and measures the
/// average schedule length with the branch pinned to the multiply thread.
fn multiply_thread_cycles(f: &Function) -> f64 {
    let (lib, rules) = section5_library();
    let mut alloc = Allocation::new();
    alloc.set(lib.by_name("mt1").unwrap(), 1);
    alloc.set(lib.by_name("sb1").unwrap(), 2);
    alloc.set(lib.by_name("cp1").unwrap(), 1);
    let mut prof = profile(f, &traces());
    // Pin the thread choice: always take the multiply side.
    for b in f.block_ids() {
        if matches!(f.block(b).term, fact_ir::Terminator::Branch { .. }) {
            prof.set_prob(b, 1.0);
        }
    }
    let opts = SchedOptions {
        // Keep blocks discrete so the 3-vs-2-cycle contrast is visible.
        if_convert: false,
        ..Default::default()
    };
    let sr = schedule(f, &lib, &rules, &alloc, &prof, &opts).expect("fig4 schedules");
    // Markov length minus the synthetic entry cycle = datapath cycles.
    let markov = fact_estim::analyze(&sr.stg).expect("analyzable");
    let _ = evaluate(&sr, &lib, 25.0);
    markov.average_schedule_length - 1.0
}

/// Runs the Figure 4 experiment.
///
/// # Panics
/// Panics if the transformation chain does not apply (covered by tests).
pub fn run() -> Fig4Result {
    let f = compile(FIG4_SRC).expect("fig4 compiles");
    let cycles_before = multiply_thread_cycles(&f);

    // Step 1: sink the subtraction through the joins (threads specialize).
    let sunk = fact_xform::crossbb::PhiSink
        .candidates(&f, &Region::whole())
        .into_iter()
        .next()
        .expect("subtraction sinks through joins")
        .function;
    // Step 2: factor the common multiplicand on the multiply thread.
    let factored = fact_xform::algebraic::Distributivity
        .candidates(&sunk, &Region::whole())
        .into_iter()
        .find(|c| c.description.contains("factor"))
        .expect("distributivity applies on the specialized thread")
        .function;

    let equivalence_checked =
        check_equivalence(&f, &factored, &traces(), 44).expect("equivalent for every thread");
    let cycles_after = multiply_thread_cycles(&factored);
    let muls_after = factored
        .block_ids()
        .flat_map(|b| factored.block(b).ops.clone())
        .filter(|&op| {
            matches!(
                factored.op(op).kind,
                fact_ir::OpKind::Bin(fact_ir::BinOp::Mul, ..)
            )
        })
        .count();

    Fig4Result {
        cycles_before,
        cycles_after,
        muls_after,
        transformed: factored,
        equivalence_checked,
    }
}

/// Renders the figure report.
pub fn report(r: &Fig4Result) -> String {
    let mut s = String::new();
    s.push_str("Figure 4 / Example 3 — distributivity across basic blocks\n\n");
    s.push_str(&format!(
        "multiply-thread cycles before: {:>5.1}   (paper: 3)\n",
        r.cycles_before
    ));
    s.push_str(&format!(
        "multiply-thread cycles after:  {:>5.1}   (paper: 2)\n",
        r.cycles_after
    ));
    s.push_str(&format!(
        "multiplications remaining: {}   (paper: one per thread execution)\n",
        r.muls_after
    ));
    s.push_str(&format!(
        "functional equivalence checked on {} vectors across both threads\n\n",
        r.equivalence_checked
    ));
    s.push_str("transformed CDFG (Figure 4(b) analogue):\n");
    s.push_str(&r.transformed.to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_three_cycles_to_two() {
        let r = run();
        // Paper: 3 cycles -> 2 cycles on the multiply thread.
        assert!(
            (r.cycles_before - 3.0).abs() < 0.51,
            "before {}",
            r.cycles_before
        );
        assert!(
            (r.cycles_after - 2.0).abs() < 0.51,
            "after {}",
            r.cycles_after
        );
        assert!(r.cycles_after < r.cycles_before);
        assert_eq!(r.muls_after, 1);
        assert!(r.equivalence_checked > 50);
    }
}
