//! Search-throughput measurement: evaluations/sec over the §5 suite.
//!
//! Unlike the paper-artifact drivers, this module records the *perf
//! trajectory* of the engine itself: how many candidate evaluations per
//! second the full FACT pipeline sustains on each suite benchmark, plus
//! wall time and evaluation-cache hit rate. The `search_perf` bench
//! target writes the result as `BENCH_search.json` so successive PRs can
//! be compared number-for-number.
//!
//! Std-only by design (the offline build has no serde/criterion): the
//! JSON is emitted by hand from a flat result struct.

use fact_core::{
    optimize_with, suite, EvalCache, FactConfig, OptimizeHooks, PhaseTimers, TransformLibrary,
};
use fact_estim::section5_library;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Throughput measurement of one suite benchmark.
#[derive(Clone, Debug)]
pub struct SuitePerf {
    /// Benchmark name (Table 2 row).
    pub name: &'static str,
    /// Candidate evaluations performed by the search.
    pub evaluated: usize,
    /// Evaluations answered by the [`EvalCache`].
    pub cache_hits: usize,
    /// Wall-clock time of the whole `optimize_with` run, seconds.
    pub wall_s: f64,
    /// `evaluated / wall_s`.
    pub evals_per_sec: f64,
    /// Cache hit rate over the run (`hits / lookups`).
    pub cache_hit_rate: f64,
    /// Wall time spent compiling candidates, seconds
    /// ([`PhaseTimers::compile_ns`]).
    pub compile_s: f64,
    /// Wall time spent simulating (verification, profiling, divergence
    /// probes), seconds ([`PhaseTimers::simulate_ns`]).
    pub simulate_s: f64,
    /// Wall time spent scheduling and estimating, seconds
    /// ([`PhaseTimers::estimate_ns`]).
    pub estimate_s: f64,
}

/// One full measurement pass: every Table 2 benchmark, fresh cache each.
#[derive(Clone, Debug)]
pub struct SearchPerf {
    /// Label for the engine configuration measured (e.g. `incremental`).
    pub mode: String,
    /// Evaluation budget per benchmark (`SearchConfig::max_evaluations`).
    pub budget: usize,
    /// Per-benchmark measurements.
    pub suites: Vec<SuitePerf>,
}

impl SearchPerf {
    /// Total evaluations across all suites.
    pub fn total_evaluated(&self) -> usize {
        self.suites.iter().map(|s| s.evaluated).sum()
    }

    /// Total wall time across all suites, seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.suites.iter().map(|s| s.wall_s).sum()
    }

    /// Aggregate evaluations/sec (total evals over total wall time).
    pub fn total_evals_per_sec(&self) -> f64 {
        let w = self.total_wall_s();
        if w > 0.0 {
            self.total_evaluated() as f64 / w
        } else {
            0.0
        }
    }
}

/// Runs the search-throughput measurement over the §5 suite with the
/// given configuration, labeled `mode` in the report.
///
/// Each benchmark gets a fresh [`EvalCache`] so hit rates reflect
/// within-run reuse only (cross-run reuse would make the numbers depend
/// on measurement order).
pub fn run_with(mode: &str, config: &FactConfig) -> SearchPerf {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    let mut suites = Vec::new();
    for b in suite(&lib) {
        let cache = EvalCache::default();
        let timers = PhaseTimers::default();
        let hooks = OptimizeHooks {
            cache: Some(&cache),
            stop: None,
            timers: Some(&timers),
        };
        let t0 = Instant::now();
        let r = optimize_with(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            config,
            hooks,
        );
        let wall_s = t0.elapsed().as_secs_f64();
        let (evaluated, cache_hits) = match &r {
            Ok(r) => (r.evaluated, r.cache_hits),
            Err(_) => (0, 0),
        };
        let cs = cache.stats();
        suites.push(SuitePerf {
            name: b.name,
            evaluated,
            cache_hits,
            wall_s,
            evals_per_sec: if wall_s > 0.0 {
                evaluated as f64 / wall_s
            } else {
                0.0
            },
            cache_hit_rate: cs.hit_rate(),
            compile_s: timers.compile_ns.load(Ordering::Relaxed) as f64 / 1e9,
            simulate_s: timers.simulate_ns.load(Ordering::Relaxed) as f64 / 1e9,
            estimate_s: timers.estimate_ns.load(Ordering::Relaxed) as f64 / 1e9,
        });
    }
    SearchPerf {
        mode: mode.to_string(),
        budget: config.search.max_evaluations,
        suites,
    }
}

/// The standard measurement configuration: defaults with the given
/// per-benchmark evaluation budget, single-threaded so evals/sec
/// reflects per-candidate cost rather than core count.
pub fn standard_config(budget: usize) -> FactConfig {
    let mut config = FactConfig::default();
    config.search.max_evaluations = budget;
    config.search.threads = 1;
    config
}

/// Renders one or more measurement passes as a JSON document.
pub fn to_json(passes: &[SearchPerf]) -> String {
    let mut out = String::from("{\n  \"bench\": \"search\",\n  \"passes\": [\n");
    for (pi, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"mode\": \"{}\",\n      \"budget\": {},\n      \"suites\": [\n",
            p.mode, p.budget
        ));
        for (i, s) in p.suites.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"evaluated\": {}, \"cache_hits\": {}, \
                 \"wall_s\": {:.4}, \"evals_per_sec\": {:.1}, \"cache_hit_rate\": {:.4}, \
                 \"compile_s\": {:.4}, \"simulate_s\": {:.4}, \"estimate_s\": {:.4}}}{}\n",
                s.name,
                s.evaluated,
                s.cache_hits,
                s.wall_s,
                s.evals_per_sec,
                s.cache_hit_rate,
                s.compile_s,
                s.simulate_s,
                s.estimate_s,
                if i + 1 < p.suites.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ],\n      \"total_evaluated\": {},\n      \"total_wall_s\": {:.4},\n      \
             \"total_evals_per_sec\": {:.1}\n    }}{}\n",
            p.total_evaluated(),
            p.total_wall_s(),
            p.total_evals_per_sec(),
            if pi + 1 < passes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_numbers() {
        let p = run_with("smoke", &standard_config(8));
        assert_eq!(p.suites.len(), 6);
        assert!(p.total_evaluated() > 0);
        assert!(p.total_wall_s() > 0.0);
        let json = to_json(&[p]);
        assert!(json.contains("\"bench\": \"search\""));
        assert!(json.contains("\"mode\": \"smoke\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
