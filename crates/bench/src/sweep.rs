//! Resource-sensitivity sweep: how the FACT-vs-M1 gap varies with the
//! allocation.
//!
//! Two regimes emerge, depending on what the transformation does:
//!
//! * **Demand-reducing rewrites** (FIR's factoring removes a multiply):
//!   the gap is widest under scarcity and *closes* as units are added —
//!   extra hardware substitutes for the transformation.
//! * **Parallelism-exposing rewrites** (PPS's tree-height reduction): the
//!   untransformed chain cannot use extra units at all, so the gap
//!   *grows* with the allocation — the transformation is what converts
//!   area into speed.
//!
//! Both shapes are consequences of the paper's central point: whether a
//! rewrite helps is a property of the schedule context, not of the
//! rewrite.

use fact_core::{m1, optimize, suite, FactConfig, Objective, SearchConfig, TransformLibrary};
use fact_estim::section5_library;
use fact_sched::{Allocation, SchedOptions};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Benchmark name.
    pub circuit: String,
    /// The swept unit's count.
    pub count: u32,
    /// M1 average schedule length.
    pub m1: f64,
    /// FACT average schedule length.
    pub fact: f64,
    /// Gap factor (M1 / FACT, ≥ 1 when FACT wins).
    pub gap: f64,
}

/// Sweeps the named unit's allocation for one benchmark.
fn sweep_unit(bench_name: &str, unit: &str, counts: &[u32], quick: bool) -> Vec<SweepPoint> {
    let (lib, rules) = section5_library();
    let b = suite(&lib)
        .into_iter()
        .find(|b| b.name == bench_name)
        .expect("benchmark exists");
    let fu = lib.by_name(unit).expect("unit exists");
    let search = if quick {
        SearchConfig {
            max_moves: 2,
            in_set_size: 2,
            max_rounds: 3,
            max_evaluations: 60,
            ..Default::default()
        }
    } else {
        SearchConfig {
            max_moves: 4,
            in_set_size: 3,
            max_rounds: 6,
            max_evaluations: 300,
            ..Default::default()
        }
    };
    let mut out = Vec::new();
    for &count in counts {
        let mut alloc: Allocation = b.allocation.clone();
        alloc.set(fu, count);
        let m = match m1(
            &b.function,
            &lib,
            &rules,
            &alloc,
            &b.traces,
            &SchedOptions::default(),
        ) {
            Ok(r) => r.estimate.average_schedule_length,
            Err(_) => continue,
        };
        let cfg = FactConfig {
            objective: Objective::Throughput,
            search: search.clone(),
            ..Default::default()
        };
        let fa = match optimize(
            &b.function,
            &lib,
            &rules,
            &alloc,
            &b.traces,
            &TransformLibrary::full(),
            &cfg,
        ) {
            Ok(r) => r.estimate.average_schedule_length,
            Err(_) => continue,
        };
        out.push(SweepPoint {
            circuit: bench_name.to_string(),
            count,
            m1: m,
            fact: fa,
            gap: m / fa,
        });
    }
    out
}

/// Runs the sweep study: FIR over multiplier count, PPS over adder count.
pub fn run(quick: bool) -> Vec<SweepPoint> {
    let mut rows = sweep_unit("FIR", "mt1", &[1, 2, 3], quick);
    rows.extend(sweep_unit("PPS", "a1", &[2, 3, 5, 8, 15], quick));
    rows
}

/// Renders the sweep table.
pub fn report(rows: &[SweepPoint]) -> String {
    let mut s = String::new();
    s.push_str("Resource-sensitivity sweep — cycles (lower is better)\n\n");
    s.push_str(&format!(
        "{:<10} {:>6} {:>10} {:>10} {:>8}\n",
        "Circuit", "units", "M1", "FACT", "gap"
    ));
    s.push_str(&format!("{}\n", "-".repeat(48)));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>6} {:>10.1} {:>10.1} {:>7.2}x\n",
            r.circuit, r.count, r.m1, r.fact, r.gap
        ));
    }
    s.push_str(
        "\nFIR (demand-reducing factoring): the gap closes as units are added.\n\
         PPS (parallelism-exposing tree balance): the gap grows with units —\n\
         the untransformed chain cannot use them.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_both_regimes() {
        // Full search budget: FIR's win is a three-step chain the quick
        // budget does not always reach.
        let rows = run(false);
        assert!(!rows.is_empty());
        // FIR: demand-reducing — the gap closes once units are plentiful.
        let fir: Vec<_> = rows.iter().filter(|r| r.circuit == "FIR").collect();
        assert!(fir.first().unwrap().gap > 1.5, "{:?}", fir.first());
        assert!(fir.last().unwrap().gap < 1.1, "{:?}", fir.last());
        // PPS: parallelism-exposing — the gap grows with the allocation.
        let pps: Vec<_> = rows.iter().filter(|r| r.circuit == "PPS").collect();
        assert!(
            pps.last().unwrap().gap >= pps.first().unwrap().gap,
            "PPS gap shrank: {:?} -> {:?}",
            pps.first(),
            pps.last()
        );
        // More units never make either method slower.
        for circuit in ["FIR", "PPS"] {
            let pts: Vec<_> = rows.iter().filter(|r| r.circuit == circuit).collect();
            for w in pts.windows(2) {
                assert!(w[1].m1 <= w[0].m1 + 1e-6, "{circuit}: M1 regressed");
                assert!(w[1].fact <= w[0].fact + 1e-6, "{circuit}: FACT regressed");
            }
        }
    }
}
