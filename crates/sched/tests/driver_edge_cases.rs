//! Edge cases of the scheduler driver: nested loops, empty-block cycles,
//! multi-memory behaviors, degenerate allocations, and consistency of the
//! empirical visit annotations.

use fact_lang::compile;
use fact_sched::{schedule, Allocation, FuLibrary, FuSpec, SchedOptions, SelectionRules};
use fact_sim::{generate, profile, InputSpec, TraceSet};

/// A local §5-style library (fact-sched cannot depend on fact-estim).
fn section5_library() -> (FuLibrary, SelectionRules) {
    let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
    for (name, e, d, a) in [
        ("a1", 1.3, 10.0, 1.5),
        ("sb1", 1.3, 10.0, 1.5),
        ("mt1", 2.3, 23.0, 3.9),
        ("cp1", 1.1, 10.0, 1.3),
        ("e1", 0.6, 5.0, 0.8),
        ("i1", 0.7, 5.0, 1.1),
        ("n1", 0.2, 2.0, 0.4),
        ("s1", 0.9, 10.0, 1.2),
    ] {
        lib.add(FuSpec {
            name: name.into(),
            energy_coeff: e,
            delay_ns: d,
            area: a,
        });
    }
    let rules = SelectionRules {
        add: lib.by_name("a1"),
        sub: lib.by_name("sb1"),
        mul: lib.by_name("mt1"),
        cmp: lib.by_name("cp1"),
        eq: lib.by_name("e1"),
        incr: lib.by_name("i1"),
        shift: lib.by_name("s1"),
        logic: lib.by_name("n1"),
        ..Default::default()
    };
    (lib, rules)
}

fn alloc_all(lib: &FuLibrary, count: u32) -> Allocation {
    let mut a = Allocation::new();
    for (id, _) in lib.iter() {
        a.set(id, count);
    }
    a
}

fn traces_for(f: &fact_ir::Function, n: usize) -> TraceSet {
    let specs: Vec<_> = f
        .inputs()
        .iter()
        .map(|(name, _)| (name.clone(), InputSpec::Uniform { lo: 1, hi: 8 }))
        .collect();
    generate(&specs, n, 314)
}

fn run(src: &str, opts: &SchedOptions) -> fact_sched::ScheduleResult {
    let f = compile(src).unwrap();
    let (lib, rules) = section5_library();
    let alloc = alloc_all(&lib, 2);
    let prof = profile(&f, &traces_for(&f, 6));
    schedule(&f, &lib, &rules, &alloc, &prof, opts).unwrap()
}

#[test]
fn nested_loops_schedule_under_all_option_combinations() {
    let src = r#"
        proc nested(n) {
            array acc[32];
            var k = 0;
            while (k < n) {
                var s = 0;
                var j = 0;
                while (j < n) { s = s + j * k; j = j + 1; }
                acc[k] = s;
                k = k + 1;
            }
        }
    "#;
    for if_convert in [false, true] {
        for rotate in [false, true] {
            for pipeline in [false, true] {
                for concurrent in [false, true] {
                    let opts = SchedOptions {
                        if_convert,
                        rotate,
                        pipeline,
                        concurrent,
                        ..Default::default()
                    };
                    let sr = run(src, &opts);
                    sr.stg.validate().unwrap_or_else(|e| {
                        panic!(
                            "ifc={if_convert} rot={rotate} pipe={pipeline} conc={concurrent}: {e}"
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn three_independent_loops_form_one_group() {
    let src = r#"
        proc three(n) {
            array x[32];
            array y[32];
            array z[32];
            var i = 0;
            while (i < n) { x[i] = i + 1; i = i + 1; }
            var j = 0;
            while (j < n) { y[j] = j + 2; j = j + 1; }
            var k = 0;
            while (k < n) { z[k] = k + 3; k = k + 1; }
        }
    "#;
    let sr = run(src, &SchedOptions::default());
    sr.stg.validate().unwrap();
    assert_eq!(sr.report.concurrent_groups, 1, "{:?}", sr.report);
}

#[test]
fn behavior_with_many_memories_schedules() {
    // Eight distinct memories accessed in one loop body: the per-memory
    // port constraint must serialize nothing across *different* memories.
    let src = r#"
        proc many(n) {
            array a0[8]; array a1[8]; array a2[8]; array a3[8];
            array a4[8]; array a5[8]; array a6[8]; array a7[8];
            var i = 0;
            while (i < 8) {
                a0[i] = i; a1[i] = i; a2[i] = i; a3[i] = i;
                a4[i] = i; a5[i] = i; a6[i] = i; a7[i] = i;
                i = i + 1;
            }
            out d = a0[0];
        }
    "#;
    let sr = run(src, &SchedOptions::default());
    sr.stg.validate().unwrap();
}

#[test]
fn single_iteration_loop_annotations_are_sane() {
    let src = "proc once(n) { var i = 0; while (i < 1) { i = i + 1; } out i = i; }";
    let sr = run(src, &SchedOptions::default());
    sr.stg.validate().unwrap();
    // Every state that carries an annotation has a finite non-negative one.
    for s in sr.stg.state_ids() {
        if let Some(v) = sr.stg.state(s).expected_visits {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}

#[test]
fn empirical_annotations_cover_all_reachable_states() {
    // With a profiled function, the scheduler should annotate everything
    // reachable, enabling the empirical estimator path.
    let src = r#"
        proc covered(n, a) {
            var s = 0;
            var i = 0;
            while (i < n) {
                if (a > 3) { s = s + 2; } else { s = s + 1; }
                i = i + 1;
            }
            out s = s;
        }
    "#;
    let sr = run(src, &SchedOptions::default());
    let mut reach = vec![false; sr.stg.num_states()];
    let mut stack = vec![sr.stg.entry()];
    reach[sr.stg.entry().index()] = true;
    while let Some(s) = stack.pop() {
        for t in sr.stg.outgoing(s) {
            if !reach[t.to.index()] {
                reach[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    for s in sr.stg.state_ids() {
        if s == sr.stg.done() || !reach[s.index()] {
            continue;
        }
        assert!(
            sr.stg.state(s).expected_visits.is_some(),
            "state {s} lacks an empirical annotation"
        );
    }
}

#[test]
fn zero_trip_loop_profile_still_schedules() {
    // The loop never executes under the traces (n = 0): body visits are
    // zero, probabilities degenerate — scheduling must still succeed.
    let f = compile("proc z(n) { var i = 0; while (i < n) { i = i + 1; } out i = i; }").unwrap();
    let (lib, rules) = section5_library();
    let alloc = alloc_all(&lib, 1);
    let traces = generate(&[("n".to_string(), InputSpec::Constant(0))], 4, 5);
    let prof = profile(&f, &traces);
    let sr = schedule(&f, &lib, &rules, &alloc, &prof, &SchedOptions::default()).unwrap();
    sr.stg.validate().unwrap();
    // Sum the empirical annotations directly (fact-estim is downstream).
    let total: f64 = sr
        .stg
        .state_ids()
        .filter(|&s| s != sr.stg.done())
        .filter_map(|s| sr.stg.state(s).expected_visits)
        .sum();
    assert!(total >= 1.0);
    assert!(total < 10.0, "{total}");
}

#[test]
fn do_while_loops_schedule_and_rotate_or_pipeline() {
    let src = "proc dw(n) { var i = 0; do { i = i + 1; } while (i < n); out i = i; }";
    let sr = run(src, &SchedOptions::default());
    sr.stg.validate().unwrap();
}

#[test]
fn straightline_behavior_has_no_loop_artifacts() {
    let sr = run(
        "proc s(a, b) { out y = (a + b) * (a - b); }",
        &SchedOptions::default(),
    );
    sr.stg.validate().unwrap();
    assert!(sr.report.kernels.is_empty());
    assert!(sr.report.rotations.is_empty());
    assert_eq!(sr.report.concurrent_groups, 0);
}
