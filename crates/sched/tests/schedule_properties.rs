//! Property-based tests of the list scheduler: for any straight-line
//! dataflow graph, any (positive) allocation, and any clock period, the
//! produced schedule must respect data dependencies, chaining timing, and
//! per-state resource limits.

use fact_ir::{BinOp, Function, OpKind};
use fact_sched::listsched::{block_dependencies, schedule_block};
use fact_sched::{Allocation, FuLibrary, FuSelection, FuSpec, SelectionRules};
use proptest::prelude::*;
use std::collections::HashMap;

/// Recipe: k inputs, then ops each combining two earlier values.
#[derive(Clone, Debug)]
struct DfgPlan {
    inputs: usize,
    ops: Vec<(u8, usize, usize)>, // (op class, left idx, right idx)
}

fn dfg_strategy() -> impl Strategy<Value = DfgPlan> {
    (2usize..5).prop_flat_map(|inputs| {
        proptest::collection::vec((0u8..4, 0usize..100, 0usize..100), 1..12)
            .prop_map(move |ops| DfgPlan { inputs, ops })
    })
}

fn lib_and_rules() -> (FuLibrary, SelectionRules) {
    let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
    let add = lib.add(FuSpec {
        name: "add".into(),
        energy_coeff: 1.3,
        delay_ns: 10.0,
        area: 1.5,
    });
    let sub = lib.add(FuSpec {
        name: "sub".into(),
        energy_coeff: 1.3,
        delay_ns: 10.0,
        area: 1.5,
    });
    let mul = lib.add(FuSpec {
        name: "mul".into(),
        energy_coeff: 2.3,
        delay_ns: 23.0,
        area: 3.9,
    });
    let cmp = lib.add(FuSpec {
        name: "cmp".into(),
        energy_coeff: 1.1,
        delay_ns: 12.0,
        area: 1.3,
    });
    let rules = SelectionRules {
        add: Some(add),
        sub: Some(sub),
        mul: Some(mul),
        cmp: Some(cmp),
        eq: Some(cmp),
        ..Default::default()
    };
    (lib, rules)
}

fn build(plan: &DfgPlan) -> Function {
    let mut f = Function::new("dfg");
    let e = f.entry();
    let mut values = Vec::new();
    for i in 0..plan.inputs {
        values.push(f.emit_input(e, format!("i{i}")));
    }
    for (class, a, b) in &plan.ops {
        let x = values[a % values.len()];
        let y = values[b % values.len()];
        let op = match class {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Lt,
        };
        values.push(f.emit_bin(e, op, x, y));
    }
    let last = *values.last().expect("nonempty");
    f.emit_output(e, "y", last);
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn schedules_respect_dependencies_and_resources(
        plan in dfg_strategy(),
        adders in 1u32..3,
        subs in 1u32..3,
        muls in 1u32..3,
        cmps in 1u32..3,
        clk in prop_oneof![Just(15.0f64), Just(25.0), Just(40.0)],
    ) {
        let f = build(&plan);
        let (lib, rules) = lib_and_rules();
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let mut alloc = Allocation::new();
        alloc.set(lib.by_name("add").unwrap(), adders);
        alloc.set(lib.by_name("sub").unwrap(), subs);
        alloc.set(lib.by_name("mul").unwrap(), muls);
        alloc.set(lib.by_name("cmp").unwrap(), cmps);

        let sched = schedule_block(&f, f.entry(), &lib, &sel, &alloc, clk).unwrap();
        let deps = block_dependencies(&f, f.entry());

        // 1. Every datapath op is placed exactly once.
        let mut placed_in_states: HashMap<fact_ir::OpId, usize> = HashMap::new();
        for (s, ops) in sched.states.iter().enumerate() {
            for &op in ops {
                prop_assert!(placed_in_states.insert(op, s).is_none(),
                    "op {op} issued twice");
            }
        }
        for b in f.block_ids() {
            for &op in &f.block(b).ops {
                if matches!(f.op(op).kind, OpKind::Bin(..)) {
                    prop_assert!(placed_in_states.contains_key(&op),
                        "datapath op {op} never issued");
                }
            }
        }

        // 2. Dependencies: a user never starts before its producer's
        //    result is ready (same-state chaining must respect ns times).
        for (&user, ds) in &deps {
            let Some(up) = sched.placement.get(&user) else { continue };
            for &d in ds {
                let Some(dp) = sched.placement.get(&d) else { continue };
                prop_assert!(
                    (dp.end_state, dp.ready_ns) <= (up.start_state, up.start_ns + 1e-9),
                    "op {user} starts at ({}, {:.1}) before {d} finishes at ({}, {:.1})",
                    up.start_state, up.start_ns, dp.end_state, dp.ready_ns
                );
            }
        }

        // 3. Chaining never exceeds the clock period.
        for (op, p) in &sched.placement {
            if let Some(fu) = sel.fu_of(*op) {
                let delay = lib.spec(fu).delay_ns;
                if delay <= clk {
                    prop_assert!(p.start_ns + delay <= clk + 1e-6,
                        "op {op} finishes past the clock edge");
                }
            }
        }

        // 4. Per-state resource usage never exceeds the allocation
        //    (counting multi-cycle spans).
        let mut usage: Vec<HashMap<String, u32>> = vec![HashMap::new(); sched.states.len() + 4];
        for (op, p) in &sched.placement {
            if let Some(fu) = sel.fu_of(*op) {
                let spec = lib.spec(fu);
                let span = (spec.delay_ns / clk).ceil().max(1.0) as usize;
                for k in 0..span {
                    *usage[p.start_state + k].entry(spec.name.clone()).or_insert(0) += 1;
                }
            }
        }
        for (s, per_fu) in usage.iter().enumerate() {
            for (name, &count) in per_fu {
                let limit = alloc.count(lib.by_name(name).unwrap());
                prop_assert!(count <= limit,
                    "state {s}: {count} x {name} exceeds allocation {limit}");
            }
        }
    }
}
