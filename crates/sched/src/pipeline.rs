//! Loop-kernel analysis for functional pipelining.
//!
//! A branch-free loop body (after if-conversion) can be software-pipelined:
//! successive iterations overlap so that one iteration completes every
//! *initiation interval* (II) cycles, where II is bounded below by resource
//! pressure (ResMII) and by loop-carried dependence recurrences (RecMII).
//! The STG models a pipelined loop as a kernel state whose operations carry
//! weight `1/II` and which self-loops with the profiled back-edge
//! probability (see [`crate::stg`] for the weighting convention).

use crate::resources::{Allocation, FuId, FuLibrary, FuSelection};
use fact_ir::{BlockId, Function, MemId, NaturalLoop, OpId, OpKind, Terminator};
use std::collections::HashMap;

/// A resource contended for during scheduling: a functional-unit type or a
/// memory port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResKey {
    /// A functional-unit type.
    Fu(FuId),
    /// A single-ported memory.
    Mem(MemId),
}

/// Pipelinability analysis of one loop.
#[derive(Clone, Debug)]
pub struct LoopKernel {
    /// The loop header.
    pub header: BlockId,
    /// Initiation interval in cycles.
    pub ii: u32,
    /// Resource-constrained lower bound (fractional).
    pub res_mii: f64,
    /// Recurrence-constrained lower bound (cycles).
    pub rec_mii: u32,
    /// All datapath operations of the loop body (header included).
    pub body_ops: Vec<OpId>,
    /// Per-iteration resource demand.
    pub usage: HashMap<ResKey, f64>,
    /// Expected iteration count from the branch profile.
    pub expected_iters: f64,
    /// The in-loop successor of the header branch.
    pub body_target: BlockId,
    /// The out-of-loop successor of the header branch.
    pub exit_target: BlockId,
    /// Probability of staying in the loop at the header test.
    pub continue_prob: f64,
}

fn op_delay(f: &Function, lib: &FuLibrary, sel: &FuSelection, op: OpId) -> f64 {
    match &f.op(op).kind {
        OpKind::Bin(..) | OpKind::Un(..) => {
            sel.fu_of(op).map(|fu| lib.spec(fu).delay_ns).unwrap_or(0.0)
        }
        OpKind::Load { .. } | OpKind::Store { .. } => lib.memory_delay_ns,
        _ => 0.0,
    }
}

fn op_resource(f: &Function, sel: &FuSelection, op: OpId) -> Option<ResKey> {
    match &f.op(op).kind {
        OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => Some(ResKey::Mem(*mem)),
        OpKind::Bin(..) | OpKind::Un(..) => sel.fu_of(op).map(ResKey::Fu),
        _ => None,
    }
}

/// Sums the per-iteration resource demand of a set of ops.
pub fn resource_usage(f: &Function, sel: &FuSelection, ops: &[OpId]) -> HashMap<ResKey, f64> {
    let mut usage: HashMap<ResKey, f64> = HashMap::new();
    for &op in ops {
        if let Some(r) = op_resource(f, sel, op) {
            *usage.entry(r).or_insert(0.0) += 1.0;
        }
    }
    usage
}

/// Checks whether `l` has the shape kernel pipelining requires and, if so,
/// computes its kernel parameters. Returns `None` when the loop:
///
/// * contains a conditional branch other than the header test,
/// * has more than one exit edge (or an exit not at the header),
/// * both loads and stores some memory (a loop-carried memory dependence we
///   conservatively refuse to pipeline around),
/// * uses a unit with zero allocated instances, or
/// * contains a nested loop.
pub fn analyze_kernel(
    f: &Function,
    l: &NaturalLoop,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    clk: f64,
    continue_prob: f64,
) -> Option<LoopKernel> {
    // Shape: only the header branches; single exit from the header.
    let (cond, on_true, on_false) = match f.block(l.header).term {
        Terminator::Branch {
            cond,
            on_true,
            on_false,
        } => (cond, on_true, on_false),
        _ => return None,
    };
    let _ = cond;
    for &b in &l.body {
        if b != l.header {
            match f.block(b).term {
                Terminator::Jump(_) => {}
                _ => return None,
            }
        }
    }
    if l.exits.len() != 1 || l.exits[0].0 != l.header {
        return None;
    }
    let (body_target, exit_target) = if l.contains(on_true) {
        (on_true, on_false)
    } else {
        (on_false, on_true)
    };
    if !l.contains(body_target) || l.contains(exit_target) {
        return None;
    }

    // Collect body ops in a deterministic order (header first).
    let mut blocks: Vec<BlockId> = l.body.iter().copied().collect();
    blocks.sort_by_key(|b| (*b != l.header, b.index()));
    let mut body_ops: Vec<OpId> = Vec::new();
    for b in &blocks {
        body_ops.extend(f.block(*b).ops.iter().copied());
    }

    // Memory legality: no memory both loaded and stored.
    let mut loaded: Vec<MemId> = Vec::new();
    let mut stored: Vec<MemId> = Vec::new();
    for &op in &body_ops {
        match &f.op(op).kind {
            OpKind::Load { mem, .. } => loaded.push(*mem),
            OpKind::Store { mem, .. } => stored.push(*mem),
            _ => {}
        }
    }
    if loaded.iter().any(|m| stored.contains(m)) {
        return None;
    }

    // Resource bound.
    let usage = resource_usage(f, selection, &body_ops);
    let mut res_mii: f64 = 1.0;
    for (&r, &u) in &usage {
        let cap = match r {
            ResKey::Fu(fu) => alloc.count(fu) as f64,
            ResKey::Mem(_) => 1.0,
        };
        if cap == 0.0 {
            return None;
        }
        res_mii = res_mii.max(u / cap);
    }

    // Recurrence bound: for each loop phi, the longest delay path from
    // *that phi* back to its own latch-incoming value constrains II
    // (a distance-1 dependence cycle). Paths that start at one phi and end
    // at a different phi's latch value are cross-iteration feed-forward
    // dependences — they add pipeline depth, not initiation interval — so
    // each phi is treated as its own single source. (Multi-phi cycles,
    // e.g. a swap, are conservatively under-approximated at II ≥ 1;
    // ResMII still applies.)
    let in_body: HashMap<OpId, usize> = body_ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut rec_mii: u32 = 1;
    let phis: Vec<OpId> = body_ops
        .iter()
        .copied()
        .filter(|&op| matches!(f.op(op).kind, OpKind::Phi(_)))
        .collect();
    for &source in &phis {
        // Longest path (ns) from `source`; body_ops is topologically
        // consistent for in-iteration data flow (phis first, defs before
        // uses block by block). Other phis are opaque (no in-iteration
        // paths run through them).
        let mut dist: HashMap<OpId, f64> = HashMap::new();
        dist.insert(source, 0.0);
        for &op in &body_ops {
            if matches!(f.op(op).kind, OpKind::Phi(_)) {
                continue;
            }
            let mut best: Option<f64> = None;
            for v in f.op(op).kind.operands() {
                if in_body.contains_key(&v) {
                    if let Some(&dv) = dist.get(&v) {
                        best = Some(best.unwrap_or(f64::NEG_INFINITY).max(dv));
                    }
                }
            }
            if let Some(b) = best {
                dist.insert(op, b + op_delay(f, library, selection, op));
            }
        }
        if let OpKind::Phi(incoming) = &f.op(source).kind {
            for (_, v) in incoming {
                if in_body.contains_key(v) {
                    if let Some(&d) = dist.get(v) {
                        let cycles = (d / clk).ceil().max(1.0) as u32;
                        rec_mii = rec_mii.max(cycles);
                    }
                }
            }
        }
    }

    let ii = (res_mii.ceil() as u32).max(rec_mii).max(1);
    let q = continue_prob.clamp(0.0, 0.999_999);
    let expected_iters = (q / (1.0 - q)).max(1.0);

    Some(LoopKernel {
        header: l.header,
        ii,
        res_mii,
        rec_mii,
        body_ops,
        usage,
        expected_iters,
        body_target,
        exit_target,
        continue_prob: q,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifconv::if_convert;
    use crate::resources::{FuSpec, SelectionRules};
    use fact_ir::{DomTree, LoopForest};
    use fact_lang::compile;

    fn setup(src: &str, ifc: bool) -> (Function, FuLibrary, FuSelection, SelectionRules) {
        let mut f = compile(src).unwrap();
        if ifc {
            if_convert(&mut f);
        }
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        for (name, e, d, a) in [
            ("a1", 1.3, 10.0, 1.5),
            ("sb1", 1.3, 10.0, 1.5),
            ("mt1", 2.3, 23.0, 3.9),
            ("cp1", 1.1, 10.0, 1.3),
            ("i1", 0.7, 5.0, 1.1),
        ] {
            lib.add(FuSpec {
                name: name.into(),
                energy_coeff: e,
                delay_ns: d,
                area: a,
            });
        }
        let rules = SelectionRules {
            add: lib.by_name("a1"),
            sub: lib.by_name("sb1"),
            mul: lib.by_name("mt1"),
            cmp: lib.by_name("cp1"),
            eq: lib.by_name("cp1"),
            incr: lib.by_name("i1"),
            ..Default::default()
        };
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        (f, lib, sel, rules)
    }

    fn only_loop(f: &Function) -> NaturalLoop {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        forest.loops()[0].clone()
    }

    fn alloc(lib: &FuLibrary, pairs: &[(&str, u32)]) -> Allocation {
        let mut a = Allocation::new();
        for (n, c) in pairs {
            a.set(lib.by_name(n).unwrap(), *c);
        }
        a
    }

    #[test]
    fn simple_counter_pipelines_at_ii_1() {
        let (f, lib, sel, _) = setup(
            "proc f(n) { var i = 0; while (i < n) { i = i + 1; } out i = i; }",
            false,
        );
        let l = only_loop(&f);
        let a = alloc(&lib, &[("i1", 1), ("cp1", 1)]);
        let k = analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).unwrap();
        // i -> i+1 recurrence: 5ns -> 1 cycle. One incrementer, one use.
        assert_eq!(k.ii, 1);
        assert_eq!(k.rec_mii, 1);
        assert!((k.expected_iters - 9.0).abs() < 1e-9);
    }

    #[test]
    fn resource_pressure_raises_ii() {
        // Two independent adds per iteration, one adder: ResMII = 2.
        let (f, lib, sel, _) = setup(
            "proc f(n, a, b) { var i = 0; var s = 0; var t = 0; while (i < n) { s = s + a; t = t + b; i = i + 1; } out s = s; out t = t; }",
            false,
        );
        let l = only_loop(&f);
        let one = alloc(&lib, &[("a1", 1), ("i1", 1), ("cp1", 1)]);
        let k = analyze_kernel(&f, &l, &lib, &sel, &one, 25.0, 0.9).unwrap();
        assert_eq!(k.ii, 2);
        let two = alloc(&lib, &[("a1", 2), ("i1", 1), ("cp1", 1)]);
        let k2 = analyze_kernel(&f, &l, &lib, &sel, &two, 25.0, 0.9).unwrap();
        assert_eq!(k2.ii, 1);
    }

    #[test]
    fn recurrence_chain_raises_ii() {
        // s = (s * 3) + a: 23 + 10 = 33ns > 25 -> RecMII 2.
        let (f, lib, sel, _) = setup(
            "proc f(n, a) { var i = 0; var s = 1; while (i < n) { s = s * 3 + a; i = i + 1; } out s = s; }",
            false,
        );
        let l = only_loop(&f);
        let a = alloc(&lib, &[("a1", 1), ("mt1", 1), ("i1", 1), ("cp1", 1)]);
        let k = analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).unwrap();
        assert_eq!(k.rec_mii, 2);
        assert_eq!(k.ii, 2);
    }

    #[test]
    fn internal_branch_blocks_pipelining_until_ifconverted() {
        let src = r#"
            proc gcd(a, b) {
                while (a != b) {
                    if (a > b) { a = a - b; } else { b = b - a; }
                }
                out g = a;
            }
        "#;
        let (f, lib, sel, _) = setup(src, false);
        let l = only_loop(&f);
        let a = alloc(&lib, &[("sb1", 2), ("cp1", 2)]);
        assert!(analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).is_none());

        let (f2, lib2, sel2, _) = setup(src, true);
        let l2 = only_loop(&f2);
        let a2 = alloc(&lib2, &[("sb1", 2), ("cp1", 2)]);
        let k = analyze_kernel(&f2, &l2, &lib2, &sel2, &a2, 25.0, 0.9).unwrap();
        // Both subtractions execute speculatively; 2 subs / 2 units = 1;
        // recurrence a-b -> mux -> compare next iter: sub(10) + mux(0) = 10ns -> 1.
        assert_eq!(k.ii, 1);
    }

    #[test]
    fn load_store_same_memory_refuses() {
        let (f, lib, sel, _) = setup(
            "proc f(n) { array x[64]; var i = 0; while (i < n) { x[i] = x[i] + 1; i = i + 1; } }",
            false,
        );
        let l = only_loop(&f);
        let a = alloc(&lib, &[("a1", 1), ("i1", 1), ("cp1", 1)]);
        assert!(analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).is_none());
    }

    #[test]
    fn store_only_memory_is_fine() {
        let (f, lib, sel, _) = setup(
            "proc f(n) { array x[64]; var i = 0; while (i < n) { x[i] = i; i = i + 1; } }",
            false,
        );
        let l = only_loop(&f);
        let a = alloc(&lib, &[("i1", 1), ("cp1", 1)]);
        let k = analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).unwrap();
        assert_eq!(k.ii, 1);
        assert!(k.usage.contains_key(&ResKey::Mem(fact_ir::MemId(0))));
    }

    #[test]
    fn zero_allocation_refuses() {
        let (f, lib, sel, _) = setup(
            "proc f(n) { var i = 0; var s = 0; while (i < n) { s = s + s; i = i + 1; } out s = s; }",
            false,
        );
        let l = only_loop(&f);
        let a = alloc(&lib, &[("i1", 1), ("cp1", 1)]); // no adder
        assert!(analyze_kernel(&f, &l, &lib, &sel, &a, 25.0, 0.9).is_none());
    }
}
