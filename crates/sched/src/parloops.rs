//! Concurrent loop optimization: parallel execution of independent loops
//! that share the datapath (paper §1, §5; Figure 2(b) and Example 2).
//!
//! A chain of loops related by a dependence DAG is executed in *phases*:
//! in each phase every ready loop runs concurrently, progressing at a
//! fractional per-cycle iteration rate determined by its dependence
//! recurrences and by the resources left over by higher-priority loops.
//! When the loop with the least remaining work finishes, the remaining
//! loops are re-kerneled into the next phase — producing exactly the
//! `n1 = (L1 ∥ L3)`, `n2 = (L2 ∥ L3)`, `n3 = (L3)` structure of
//! Figure 2(b).

use crate::pipeline::ResKey;
use fact_ir::{BlockId, OpId};
use std::collections::HashMap;

/// Rate model of one loop participating in concurrent execution.
#[derive(Clone, Debug)]
pub struct LoopRate {
    /// The loop header (identification only).
    pub header: BlockId,
    /// Datapath ops executed each iteration, with their relative in-iteration
    /// execution frequency (1.0 for unconditional ops).
    pub ops: Vec<(OpId, f64)>,
    /// Per-iteration resource demand.
    pub usage: HashMap<ResKey, f64>,
    /// Maximum iterations per cycle permitted by dependences alone
    /// (`1/RecMII` for pipelinable loops, `1/sequential-cycles` otherwise).
    pub dep_cap: f64,
    /// Expected iteration count.
    pub expected_iters: f64,
    /// Indices (into the group) of loops that must finish first.
    pub deps: Vec<usize>,
}

/// One phase of concurrent execution.
#[derive(Clone, Debug)]
pub struct Phase {
    /// `(loop index, iteration rate per cycle)` for each active loop.
    pub active: Vec<(usize, f64)>,
    /// Expected length of the phase in cycles.
    pub length: f64,
    /// Iterations completed by each active loop during this phase.
    pub iterations: Vec<(usize, f64)>,
}

/// Plans the phase sequence for a group of loops under shared resource
/// capacities.
///
/// Higher-priority (earlier) loops claim resources first, matching the
/// paper's Example 2 where `L1` consumes one adder per cycle and `L3`
/// makes do with the remainder. Loops whose rate would be zero in a phase
/// (fully starved) wait for a later phase. Returns an empty vector if
/// `loops` is empty.
///
/// # Panics
/// Panics if a dependence index is out of range.
pub fn plan_phases(loops: &[LoopRate], capacity: &HashMap<ResKey, f64>) -> Vec<Phase> {
    let n = loops.len();
    let mut remaining: Vec<f64> = loops.iter().map(|l| l.expected_iters.max(0.0)).collect();
    let mut finished: Vec<bool> = remaining.iter().map(|&r| r <= 1e-9).collect();
    let mut phases = Vec::new();

    // Bound phases to avoid pathological loops in degenerate inputs.
    for _ in 0..(2 * n + 4) {
        if finished.iter().all(|&f| f) {
            break;
        }
        // Ready: unfinished loops whose deps finished.
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !finished[i] && loops[i].deps.iter().all(|&d| finished[d]))
            .collect();
        if ready.is_empty() {
            // Dependence cycle or inconsistency; stop planning.
            break;
        }

        // Assign rates in priority (index) order.
        let mut left = capacity.clone();
        let mut active: Vec<(usize, f64)> = Vec::new();
        for &i in &ready {
            let mut rate = loops[i].dep_cap;
            for (r, &u) in &loops[i].usage {
                if u <= 0.0 {
                    continue;
                }
                let avail = left.get(r).copied().unwrap_or(0.0);
                rate = rate.min(avail / u);
            }
            if rate > 1e-9 {
                for (r, &u) in &loops[i].usage {
                    if let Some(v) = left.get_mut(r) {
                        *v -= rate * u;
                    }
                }
                active.push((i, rate));
            }
        }
        if active.is_empty() {
            // Everything starved: fall back to running the first ready
            // loop alone at its dependence cap (resources over-subscribed
            // means the caller's capacities were inconsistent; degrade
            // gracefully rather than spin).
            active.push((ready[0], loops[ready[0]].dep_cap.max(1e-6)));
        }

        // Phase ends when the first active loop finishes.
        let length = active
            .iter()
            .map(|&(i, rate)| remaining[i] / rate)
            .fold(f64::INFINITY, f64::min)
            .max(1.0);

        let mut iterations = Vec::new();
        for &(i, rate) in &active {
            let done = (rate * length).min(remaining[i]);
            remaining[i] -= done;
            iterations.push((i, done));
            if remaining[i] <= 1e-6 {
                finished[i] = true;
                remaining[i] = 0.0;
            }
        }
        phases.push(Phase {
            active,
            length,
            iterations,
        });
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::FuId;

    fn fu(i: u32) -> ResKey {
        ResKey::Fu(FuId(i))
    }

    fn mk(usage: &[(ResKey, f64)], dep_cap: f64, iters: f64, deps: &[usize]) -> LoopRate {
        LoopRate {
            header: BlockId(0),
            ops: Vec::new(),
            usage: usage.iter().copied().collect(),
            dep_cap,
            expected_iters: iters,
            deps: deps.to_vec(),
        }
    }

    /// Paper Example 2, untransformed: adders=2, subs=2. L1 uses 1 add/iter
    /// at rate 1. L3 uses 2 adds + 1 sub per iteration -> leftover 1 adder
    /// limits L3 to rate 1/2.
    #[test]
    fn example2_untransformed_rates() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 2.0), (fu(1), 2.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 1.0, 200.0, &[]);
        let l3 = mk(&[(fu(0), 2.0), (fu(1), 1.0)], 1.0, 500.0, &[]);
        let phases = plan_phases(&[l1, l3], &cap);
        assert_eq!(phases.len(), 2);
        // Phase 1: L1 at rate 1, L3 at rate 0.5, until L1's 200 iters done.
        let p1 = &phases[0];
        assert_eq!(p1.active[0], (0, 1.0));
        assert!((p1.active[1].1 - 0.5).abs() < 1e-9);
        assert!((p1.length - 200.0).abs() < 1e-9);
        // Phase 2: L3 alone at rate 1 for its remaining 400 iterations.
        let p2 = &phases[1];
        assert_eq!(p2.active.len(), 1);
        assert!((p2.active[0].1 - 1.0).abs() < 1e-9);
        assert!((p2.length - 400.0).abs() < 1e-9);
        let total: f64 = phases.iter().map(|p| p.length).sum();
        assert!((total - 600.0).abs() < 1e-6);
    }

    /// Paper Example 2, transformed: L3 rewritten to 1 add + 2 subs. Now
    /// L3 sustains rate 1 alongside L1: total time = max(200, 500) = 500.
    #[test]
    fn example2_transformed_rates() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 2.0), (fu(1), 2.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 1.0, 200.0, &[]);
        let l3 = mk(&[(fu(0), 1.0), (fu(1), 2.0)], 1.0, 500.0, &[]);
        let phases = plan_phases(&[l1, l3], &cap);
        let total: f64 = phases.iter().map(|p| p.length).sum();
        assert!((total - 500.0).abs() < 1e-6, "total {total}");
        assert!((phases[0].active[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependences_serialize_phases() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 4.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 1.0, 100.0, &[]);
        let l2 = mk(&[(fu(0), 1.0)], 1.0, 100.0, &[0]); // after L1
        let l3 = mk(&[(fu(0), 1.0)], 1.0, 300.0, &[]); // independent
        let phases = plan_phases(&[l1, l2, l3], &cap);
        // n1 = (L1 || L3), n2 = (L2 || L3), n3 = (L3): Figure 2(b).
        assert_eq!(phases.len(), 3);
        assert_eq!(
            phases[0].active.iter().map(|a| a.0).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            phases[1].active.iter().map(|a| a.0).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(
            phases[2].active.iter().map(|a| a.0).collect::<Vec<_>>(),
            vec![2]
        );
        let total: f64 = phases.iter().map(|p| p.length).sum();
        assert!((total - 300.0).abs() < 1e-6);
    }

    #[test]
    fn starved_loop_waits_for_next_phase() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 1.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 1.0, 50.0, &[]);
        let l2 = mk(&[(fu(0), 1.0)], 1.0, 50.0, &[]);
        let phases = plan_phases(&[l1, l2], &cap);
        // One unit: L1 fully claims it; L2 runs in phase 2.
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].active.len(), 1);
        assert_eq!(phases[1].active[0].0, 1);
        let total: f64 = phases.iter().map(|p| p.length).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn dep_cap_limits_rate_below_resources() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 8.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 0.25, 100.0, &[]); // RecMII = 4
        let phases = plan_phases(&[l1], &cap);
        assert_eq!(phases.len(), 1);
        assert!((phases[0].active[0].1 - 0.25).abs() < 1e-9);
        assert!((phases[0].length - 400.0).abs() < 1e-6);
    }

    #[test]
    fn empty_group_plans_nothing() {
        assert!(plan_phases(&[], &HashMap::new()).is_empty());
    }

    #[test]
    fn phase_length_is_at_least_one_cycle() {
        let cap: HashMap<ResKey, f64> = [(fu(0), 1.0)].into_iter().collect();
        let l1 = mk(&[(fu(0), 1.0)], 1.0, 0.5, &[]);
        let phases = plan_phases(&[l1], &cap);
        assert_eq!(phases.len(), 1);
        assert!(phases[0].length >= 1.0);
    }
}
