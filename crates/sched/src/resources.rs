//! Functional-unit libraries, allocations, and operation binding.
//!
//! Mirrors the paper's resource model: a library of functional units
//! characterized for energy coefficient (`E/Vdd²`), delay, and area
//! (Table 1 and §5), an *allocation* limiting how many instances of each
//! unit may be used, and a *functional unit selection* mapping each
//! operation to the unit type that executes it.

use fact_ir::{BinOp, Function, OpId, OpKind, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Identifies a functional-unit type within a [`FuLibrary`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuId(pub u32);

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// Characterization of one functional-unit type.
#[derive(Clone, PartialEq, Debug)]
pub struct FuSpec {
    /// Library name (e.g. `"a1"`, `"w_mult1"`).
    pub name: String,
    /// Energy per operation divided by `Vdd²` (the paper's `C_type`).
    pub energy_coeff: f64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: f64,
    /// Relative area.
    pub area: f64,
}

/// A library of functional-unit types plus register/memory coefficients.
#[derive(Clone, PartialEq, Debug)]
pub struct FuLibrary {
    specs: Vec<FuSpec>,
    /// Energy coefficient of one register access.
    pub register_energy_coeff: f64,
    /// Register access delay in nanoseconds (setup+clk-to-q budget).
    pub register_delay_ns: f64,
    /// Energy coefficient of one memory access.
    pub memory_energy_coeff: f64,
    /// Memory access delay in nanoseconds.
    pub memory_delay_ns: f64,
}

impl FuLibrary {
    /// Creates an empty library with the given storage coefficients.
    pub fn new(
        register_energy_coeff: f64,
        register_delay_ns: f64,
        memory_energy_coeff: f64,
        memory_delay_ns: f64,
    ) -> Self {
        FuLibrary {
            specs: Vec::new(),
            register_energy_coeff,
            register_delay_ns,
            memory_energy_coeff,
            memory_delay_ns,
        }
    }

    /// Adds a unit type and returns its id.
    pub fn add(&mut self, spec: FuSpec) -> FuId {
        let id = FuId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Looks up a unit by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn spec(&self, id: FuId) -> &FuSpec {
        &self.specs[id.0 as usize]
    }

    /// Looks up a unit by name.
    pub fn by_name(&self, name: &str) -> Option<FuId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| FuId(i as u32))
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuId, &FuSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (FuId(i as u32), s))
    }

    /// Number of unit types.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the library has no unit types.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// How many instances of each unit type the design may use (Table 3).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Allocation {
    counts: HashMap<FuId, u32>,
}

impl Allocation {
    /// An empty allocation (no units available).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instance count of a unit type.
    pub fn set(&mut self, fu: FuId, count: u32) -> &mut Self {
        self.counts.insert(fu, count);
        self
    }

    /// Instance count for a unit type (0 if unallocated).
    pub fn count(&self, fu: FuId) -> u32 {
        self.counts.get(&fu).copied().unwrap_or(0)
    }

    /// Iterates over `(unit, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (FuId, u32)> + '_ {
        self.counts.iter().map(|(&f, &c)| (f, c))
    }
}

/// Maps operations to the functional-unit types that execute them.
///
/// Constants, inputs, phis, muxes, and outputs are *free*: they consume no
/// functional unit (phis and muxes are register transfers / steering logic
/// whose cost is folded into the interconnect overhead, as in \[5\]).
#[derive(Clone, Debug)]
pub struct FuSelection {
    by_op: HashMap<OpId, FuId>,
}

/// Rules for building a [`FuSelection`] from a function.
///
/// Each rule names the unit used for a class of operations. `None` entries
/// make operations of that class an error, surfacing incomplete libraries
/// early.
#[derive(Clone, Debug, Default)]
pub struct SelectionRules {
    /// Unit for additions (and subtractions if `sub` is `None`).
    pub add: Option<FuId>,
    /// Unit for subtractions.
    pub sub: Option<FuId>,
    /// Unit for multiplications.
    pub mul: Option<FuId>,
    /// Unit for division/remainder.
    pub div: Option<FuId>,
    /// Unit for magnitude comparisons (`<`, `<=`, `>`, `>=`).
    pub cmp: Option<FuId>,
    /// Unit for equality comparisons (`==`, `!=`); falls back to `cmp`.
    pub eq: Option<FuId>,
    /// Unit for increments/decrements (`x ± 1` with a constant operand);
    /// falls back to `add`/`sub`.
    pub incr: Option<FuId>,
    /// Unit for shifts.
    pub shift: Option<FuId>,
    /// Unit for bitwise logic (`&`, `|`, `^`) and bitwise not.
    pub logic: Option<FuId>,
}

/// Error produced when an operation has no unit to run on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SelectionError {
    /// The unbindable operation.
    pub op: OpId,
    /// Description of the missing unit class.
    pub missing: String,
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no functional unit for op {} ({})",
            self.op, self.missing
        )
    }
}

impl std::error::Error for SelectionError {}

impl FuSelection {
    /// Builds a selection for every datapath operation of `f` using the
    /// given rules.
    ///
    /// # Errors
    /// Returns [`SelectionError`] if some operation class has no unit.
    pub fn from_rules(f: &Function, rules: &SelectionRules) -> Result<Self, SelectionError> {
        let mut by_op = HashMap::new();
        let is_const_one = |v: OpId| matches!(f.op(v).kind, OpKind::Const(1) | OpKind::Const(-1));
        for b in f.block_ids() {
            for &op in &f.block(b).ops {
                let fu = match &f.op(op).kind {
                    OpKind::Bin(bin, x, y) => {
                        let class: (&str, Option<FuId>) = match bin {
                            BinOp::Add | BinOp::Sub => {
                                let incrementable = is_const_one(*x) || is_const_one(*y);
                                let base = if *bin == BinOp::Sub {
                                    rules.sub.or(rules.add)
                                } else {
                                    rules.add
                                };
                                if incrementable {
                                    ("adder", rules.incr.or(base))
                                } else {
                                    ("adder", base)
                                }
                            }
                            BinOp::Mul => ("multiplier", rules.mul),
                            BinOp::Div | BinOp::Rem => ("divider", rules.div),
                            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                                ("comparator", rules.cmp)
                            }
                            BinOp::Eq | BinOp::Ne => {
                                ("equality comparator", rules.eq.or(rules.cmp))
                            }
                            BinOp::Shl | BinOp::Shr => ("shifter", rules.shift),
                            BinOp::And | BinOp::Or | BinOp::Xor => ("logic unit", rules.logic),
                        };
                        match class.1 {
                            Some(fu) => Some(fu),
                            None => {
                                return Err(SelectionError {
                                    op,
                                    missing: class.0.to_string(),
                                })
                            }
                        }
                    }
                    OpKind::Un(UnOp::Neg, _) => match rules.sub.or(rules.add) {
                        Some(fu) => Some(fu),
                        None => {
                            return Err(SelectionError {
                                op,
                                missing: "subtracter (for negation)".to_string(),
                            })
                        }
                    },
                    OpKind::Un(UnOp::Not | UnOp::LNot, _) => match rules.logic {
                        Some(fu) => Some(fu),
                        None => {
                            return Err(SelectionError {
                                op,
                                missing: "inverter".to_string(),
                            })
                        }
                    },
                    // Loads/stores use memory ports, not functional units.
                    // Everything else is free.
                    _ => None,
                };
                if let Some(fu) = fu {
                    by_op.insert(op, fu);
                }
            }
        }
        Ok(FuSelection { by_op })
    }

    /// The unit executing `op`, if it needs one.
    pub fn fu_of(&self, op: OpId) -> Option<FuId> {
        self.by_op.get(&op).copied()
    }

    /// Counts operations bound to each unit type.
    pub fn usage_histogram(&self) -> HashMap<FuId, usize> {
        let mut h = HashMap::new();
        for &fu in self.by_op.values() {
            *h.entry(fu).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_lang::compile;

    fn tiny_library() -> (FuLibrary, SelectionRules) {
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let add = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let sub = lib.add(FuSpec {
            name: "sb1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let mul = lib.add(FuSpec {
            name: "mt1".into(),
            energy_coeff: 2.3,
            delay_ns: 23.0,
            area: 3.9,
        });
        let cmp = lib.add(FuSpec {
            name: "cp1".into(),
            energy_coeff: 1.1,
            delay_ns: 10.0,
            area: 1.3,
        });
        let incr = lib.add(FuSpec {
            name: "i1".into(),
            energy_coeff: 0.7,
            delay_ns: 5.0,
            area: 1.1,
        });
        let rules = SelectionRules {
            add: Some(add),
            sub: Some(sub),
            mul: Some(mul),
            cmp: Some(cmp),
            eq: Some(cmp),
            incr: Some(incr),
            ..Default::default()
        };
        (lib, rules)
    }

    #[test]
    fn library_lookup_by_name() {
        let (lib, _) = tiny_library();
        let mul = lib.by_name("mt1").unwrap();
        assert_eq!(lib.spec(mul).delay_ns, 23.0);
        assert!(lib.by_name("zz").is_none());
        assert_eq!(lib.len(), 5);
    }

    #[test]
    fn allocation_defaults_to_zero() {
        let (lib, _) = tiny_library();
        let add = lib.by_name("a1").unwrap();
        let mut alloc = Allocation::new();
        assert_eq!(alloc.count(add), 0);
        alloc.set(add, 2);
        assert_eq!(alloc.count(add), 2);
    }

    #[test]
    fn selection_binds_by_class() {
        let (lib, rules) = tiny_library();
        let f = compile("proc f(a, b) { out y = (a + b) * (a - b); }").unwrap();
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let usage = sel.usage_histogram();
        assert_eq!(usage[&lib.by_name("a1").unwrap()], 1);
        assert_eq!(usage[&lib.by_name("sb1").unwrap()], 1);
        assert_eq!(usage[&lib.by_name("mt1").unwrap()], 1);
    }

    #[test]
    fn increment_binds_to_incrementer() {
        let (lib, rules) = tiny_library();
        let f = compile("proc f(i, n) { out j = i + 1; out k = i + n; }").unwrap();
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let usage = sel.usage_histogram();
        assert_eq!(usage[&lib.by_name("i1").unwrap()], 1);
        assert_eq!(usage[&lib.by_name("a1").unwrap()], 1);
    }

    #[test]
    fn free_ops_are_unbound() {
        let (_, rules) = tiny_library();
        let f = compile("proc f(a) { array x[4]; x[0] = a; out y = x[0]; }").unwrap();
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        // Store, load, const, input, output: none bound to FUs.
        assert!(sel.usage_histogram().is_empty());
    }

    #[test]
    fn missing_unit_is_an_error() {
        let (_, mut rules) = tiny_library();
        rules.mul = None;
        let f = compile("proc f(a) { out y = a * a; }").unwrap();
        let err = FuSelection::from_rules(&f, &rules).unwrap_err();
        assert!(err.to_string().contains("multiplier"));
    }

    #[test]
    fn comparisons_share_the_comparator() {
        let (lib, rules) = tiny_library();
        let f = compile("proc f(a, b) { out y = (a < b) + (a == b); }").unwrap();
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let usage = sel.usage_histogram();
        assert_eq!(usage[&lib.by_name("cp1").unwrap()], 2);
    }
}
