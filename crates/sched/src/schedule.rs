//! The scheduler driver: CDFG → STG (paper Figure 5, step 1; rescheduling
//! in steps 5–6).
//!
//! Combines the per-block list scheduler with the Wavesched-class loop
//! optimizations: if-conversion, loop-kernel pipelining, implicit
//! unrolling (header rotation into the latch state, Figure 1(c)), and
//! concurrent loop phases (Figure 2(b)).

use crate::ifconv::if_convert;
use crate::listsched::{schedule_block, BlockSchedule, SchedError};
use crate::memo::ScheduleMemo;
use crate::parloops::{plan_phases, LoopRate, Phase};
use crate::pipeline::{analyze_kernel, LoopKernel, ResKey};
use crate::resources::{Allocation, FuLibrary, FuSelection, SelectionError, SelectionRules};
use crate::stg::{ScheduledOp, StateId, Stg};
use fact_ir::{BlockId, DomTree, Function, LoopForest, NaturalLoop, OpId, OpKind, Terminator};
use fact_sim::BranchProfile;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedOptions {
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Convert side-effect-free diamonds to muxes (enables pipelining
    /// across `if` constructs).
    pub if_convert: bool,
    /// Fold next-iteration header operations into latch states (implicit
    /// loop unrolling, Figure 1(c) state `S5`).
    pub rotate: bool,
    /// Pipeline branch-free innermost loops at their initiation interval.
    pub pipeline: bool,
    /// Execute independent sibling loops concurrently (Figure 2(b)).
    pub concurrent: bool,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            clock_ns: 25.0,
            if_convert: true,
            rotate: true,
            pipeline: true,
            concurrent: true,
        }
    }
}

/// What the scheduler did, for reports and tests.
#[derive(Clone, Debug, Default)]
pub struct ScheduleReport {
    /// Diamonds if-converted.
    pub if_converted: usize,
    /// Loops whose headers were rotated into their latches, with the
    /// states saved per iteration.
    pub rotations: Vec<(BlockId, usize)>,
    /// Pipelined loops as `(header, II)`.
    pub kernels: Vec<(BlockId, u32)>,
    /// Number of concurrent-loop groups formed.
    pub concurrent_groups: usize,
    /// Blocks whose list schedule was spliced from a [`ScheduleMemo`]
    /// (zero when scheduling without a memo).
    pub memo_hits: usize,
    /// Blocks list-scheduled from scratch.
    pub memo_misses: usize,
}

/// A complete scheduling result.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// The state transition graph.
    pub stg: Stg,
    /// The (possibly if-converted) function the STG refers to.
    pub function: Function,
    /// Functional-unit binding for `function`.
    pub selection: FuSelection,
    /// The branch profile remapped onto `function`.
    pub profile: BranchProfile,
    /// What happened.
    pub report: ScheduleReport,
}

/// Scheduler failure.
#[derive(Clone, Debug)]
pub enum ScheduleError {
    /// Operation binding failed.
    Selection(SelectionError),
    /// Block scheduling failed.
    Sched(SchedError),
    /// The produced STG failed validation (internal error).
    Internal(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Selection(e) => write!(f, "{e}"),
            ScheduleError::Sched(e) => write!(f, "{e}"),
            ScheduleError::Internal(m) => write!(f, "internal scheduler error: {m}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SelectionError> for ScheduleError {
    fn from(e: SelectionError) -> Self {
        ScheduleError::Selection(e)
    }
}

impl From<SchedError> for ScheduleError {
    fn from(e: SchedError) -> Self {
        ScheduleError::Sched(e)
    }
}

/// Per-iteration execution frequency of each body block of `l`, derived
/// from branch probabilities (header = 1.0; acyclic propagation within the
/// body).
fn block_freq_in_loop(
    f: &Function,
    l: &NaturalLoop,
    profile: &BranchProfile,
    rpo_index: &HashMap<BlockId, usize>,
) -> HashMap<BlockId, f64> {
    let mut blocks: Vec<BlockId> = l.body.iter().copied().collect();
    blocks.sort_by_key(|b| rpo_index.get(b).copied().unwrap_or(usize::MAX));
    let mut freq: HashMap<BlockId, f64> = HashMap::new();
    freq.insert(l.header, 1.0);
    for &b in &blocks {
        let fb = freq.get(&b).copied().unwrap_or(0.0);
        if fb == 0.0 {
            continue;
        }
        let edges: Vec<(BlockId, f64)> = match &f.block(b).term {
            Terminator::Jump(t) => vec![(*t, 1.0)],
            Terminator::Branch {
                on_true, on_false, ..
            } => {
                let p = profile.prob_true(b);
                vec![(*on_true, p), (*on_false, 1.0 - p)]
            }
            Terminator::Return(_) => vec![],
        };
        for (succ, p) in edges {
            if succ != l.header && l.contains(succ) {
                *freq.entry(succ).or_insert(0.0) += fb * p;
            }
        }
    }
    freq
}

/// The probability of continuing the loop at its header test, and the
/// in-loop / out-of-loop successors, if the header ends in a branch with
/// exactly one in-loop target.
fn header_continue(
    f: &Function,
    l: &NaturalLoop,
    profile: &BranchProfile,
) -> Option<(f64, BlockId, BlockId)> {
    if let Terminator::Branch {
        on_true, on_false, ..
    } = f.block(l.header).term
    {
        let p = profile.prob_true(l.header);
        match (l.contains(on_true), l.contains(on_false)) {
            (true, false) => Some((p, on_true, on_false)),
            (false, true) => Some((1.0 - p, on_false, on_true)),
            _ => None,
        }
    } else {
        None
    }
}

/// Empirical expected iterations of a loop: profiled visits of the body
/// target divided by loop entries (header visits minus iterations). Falls
/// back to `None` when visit counts were not profiled.
fn empirical_iters(prof: &BranchProfile, header: BlockId, body_target: BlockId) -> Option<f64> {
    let vb = prof.block_visits(body_target)?;
    let vh = prof.block_visits(header)?;
    let entries = (vh - vb).max(1e-9);
    Some((vb / entries).max(0.0))
}

/// Identification of a resolved transition target.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Target {
    State(StateId),
    Done,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Plan {
    Kernel(usize),
    Group(usize),
}

struct GroupInfo {
    /// Blocks covered by this group (loop bodies + glue).
    blocks: HashSet<BlockId>,
    /// Loop rate models, in program order.
    rates: Vec<LoopRate>,
    /// Planned phases.
    phases: Vec<Phase>,
    /// Where control goes after the last loop finishes.
    exit: BlockId,
    /// Executions of the whole group per run (outer-loop nesting).
    entries: f64,
}

/// Schedules `f` into an STG.
///
/// `profile` must be keyed by the block ids of `f`; if-conversion-induced
/// branch moves are remapped internally.
///
/// # Errors
/// Returns [`ScheduleError`] on binding failures, unschedulable blocks, or
/// internal STG inconsistencies.
///
/// # Examples
///
/// ```
/// use fact_sched::{schedule, Allocation, FuLibrary, FuSpec, SchedOptions, SelectionRules};
/// use fact_sim::BranchProfile;
///
/// let f = fact_lang::compile("proc f(a, b) { out y = a + b; }")?;
/// let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
/// let adder = lib.add(FuSpec {
///     name: "a1".into(), energy_coeff: 1.3, delay_ns: 10.0, area: 1.5,
/// });
/// let rules = SelectionRules { add: Some(adder), ..Default::default() };
/// let mut alloc = Allocation::new();
/// alloc.set(adder, 1);
/// let result = schedule(
///     &f, &lib, &rules, &alloc, &BranchProfile::uniform(), &SchedOptions::default(),
/// )?;
/// result.stg.validate().map_err(fact_sched::ScheduleError::Internal)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule(
    f: &Function,
    library: &FuLibrary,
    rules: &SelectionRules,
    alloc: &Allocation,
    profile: &BranchProfile,
    opts: &SchedOptions,
) -> Result<ScheduleResult, ScheduleError> {
    schedule_with_memo(f, library, rules, alloc, profile, opts, None)
}

/// [`schedule`] with an optional per-block schedule cache.
///
/// With `Some(memo)`, every per-block list schedule is looked up by
/// structural hash before being computed; hits are spliced in and counted
/// in [`ScheduleReport::memo_hits`]. Results are bit-identical to
/// [`schedule`] — the memo layer only caches a pure function (see
/// [`crate::memo`]).
///
/// # Errors
/// Same as [`schedule`] (memoized errors included).
pub fn schedule_with_memo(
    f: &Function,
    library: &FuLibrary,
    rules: &SelectionRules,
    alloc: &Allocation,
    profile: &BranchProfile,
    opts: &SchedOptions,
    memo: Option<&ScheduleMemo>,
) -> Result<ScheduleResult, ScheduleError> {
    let mut work = f.clone();
    let mut prof = profile.clone();
    let mut report = ScheduleReport::default();

    if opts.if_convert {
        let r = if_convert(&mut work);
        report.if_converted = r.converted;
        for (new_owner, orig) in &r.branch_moved_from {
            let p = profile.prob_true(*orig);
            prof.set_prob(*new_owner, p);
        }
    }

    let selection = FuSelection::from_rules(&work, rules)?;
    let dom = DomTree::compute(&work);
    let forest = LoopForest::compute(&work, &dom);
    let rpo: Vec<BlockId> = dom.rpo().to_vec();
    let rpo_index: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();

    // Per-block schedules, spliced from the memo where available.
    let mut chains_sched: HashMap<BlockId, BlockSchedule> = HashMap::new();
    for &b in &rpo {
        let bs = match memo {
            Some(m) => {
                let (outcome, hit) =
                    m.schedule_block_memoized(&work, b, library, &selection, alloc, opts.clock_ns);
                if hit {
                    report.memo_hits += 1;
                } else {
                    report.memo_misses += 1;
                }
                outcome?
            }
            None => {
                report.memo_misses += 1;
                schedule_block(&work, b, library, &selection, alloc, opts.clock_ns)?
            }
        };
        chains_sched.insert(b, bs);
    }

    // Loop metrics.
    let innermost: Vec<&NaturalLoop> = forest
        .loops()
        .iter()
        .filter(|l| {
            forest
                .loops()
                .iter()
                .all(|m| m.header == l.header || !l.contains(m.header))
        })
        .collect();

    let seq_cycles = |l: &NaturalLoop| -> f64 {
        let freq = block_freq_in_loop(&work, l, &prof, &rpo_index);
        l.body
            .iter()
            .map(|b| {
                freq.get(b).copied().unwrap_or(0.0)
                    * chains_sched.get(b).map_or(0, BlockSchedule::len) as f64
            })
            .sum::<f64>()
            .max(1.0)
    };

    // Kernel analysis for innermost loops.
    let mut kernels: Vec<LoopKernel> = Vec::new();
    let mut kernel_of_header: HashMap<BlockId, usize> = HashMap::new();
    if opts.pipeline {
        for l in &innermost {
            if let Some((q, _, _)) = header_continue(&work, l, &prof) {
                if let Some(mut k) =
                    analyze_kernel(&work, l, library, &selection, alloc, opts.clock_ns, q)
                {
                    if let Some(e) = empirical_iters(&prof, l.header, k.body_target) {
                        k.expected_iters = e.max(0.0);
                    }
                    if (k.ii as f64) < seq_cycles(l) - 1e-9 {
                        kernel_of_header.insert(l.header, kernels.len());
                        kernels.push(k);
                    }
                }
            }
        }
    }

    // Concurrent groups: chains of sibling loops joined by datapath-free
    // glue, executed as rate phases.
    let mut groups: Vec<GroupInfo> = Vec::new();
    let mut plan: HashMap<BlockId, Plan> = HashMap::new();
    if opts.concurrent {
        groups = find_groups(
            &work,
            &forest,
            &innermost,
            &kernels,
            &kernel_of_header,
            &prof,
            &rpo_index,
            library,
            &selection,
            alloc,
            &seq_cycles,
        );
        report.concurrent_groups = groups.len();
        for (gi, g) in groups.iter().enumerate() {
            for &b in &g.blocks {
                plan.insert(b, Plan::Group(gi));
            }
        }
    }
    // Kernel plans for loops not swallowed by groups.
    let mut live_kernels: Vec<(usize, LoopKernel)> = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        let covered = plan.contains_key(&k.header);
        if !covered {
            let l = innermost
                .iter()
                .find(|l| l.header == k.header)
                .expect("kernel loop exists");
            for &b in &l.body {
                plan.insert(b, Plan::Kernel(live_kernels.len()));
            }
            report.kernels.push((k.header, k.ii));
            live_kernels.push((ki, k.clone()));
        }
    }

    // Rotation for remaining loops.
    struct Rotation {
        latch: BlockId,
        rotated_ops: Vec<OpId>,
        continue_prob: f64,
        body_target: BlockId,
        exit_target: BlockId,
    }
    let mut rotations: HashMap<BlockId, Rotation> = HashMap::new(); // keyed by latch
    let mut rotated_headers: Vec<(BlockId, BlockId)> = Vec::new();
    if opts.rotate {
        for l in forest.loops() {
            if plan.contains_key(&l.header) {
                continue;
            }
            if l.body.iter().any(|b| plan.contains_key(b)) {
                continue;
            }
            let Some((q, body_target, exit_target)) = header_continue(&work, l, &prof) else {
                continue;
            };
            if l.exits.len() != 1 || l.exits[0].0 != l.header || l.latches.len() != 1 {
                continue;
            }
            let latch = l.latches[0];
            if latch == l.header {
                continue;
            }
            let header_sched = &chains_sched[&l.header];
            let latch_sched = &chains_sched[&latch];
            if header_sched.is_empty() || latch_sched.is_empty() {
                continue;
            }
            if let Some(rotated_ops) = try_rotation(
                &work,
                l,
                latch,
                latch_sched,
                library,
                &selection,
                alloc,
                opts.clock_ns,
            ) {
                report.rotations.push((l.header, header_sched.len()));
                rotated_headers.push((l.header, body_target));
                rotations.insert(
                    latch,
                    Rotation {
                        latch,
                        rotated_ops,
                        continue_prob: q,
                        body_target,
                        exit_target,
                    },
                );
            }
        }
    }

    // ----- STG assembly -----
    let mut stg = Stg::new();

    // States for normal chains.
    let mut chain_states: HashMap<BlockId, Vec<StateId>> = HashMap::new();
    for &b in &rpo {
        if plan.contains_key(&b) {
            continue;
        }
        let bs = &chains_sched[&b];
        if bs.is_empty() {
            continue;
        }
        let name = work.block(b).name.clone().unwrap_or_else(|| format!("{b}"));
        let mut ids = Vec::new();
        for (i, ops) in bs.states.iter().enumerate() {
            let s = stg.add_state(format!("{name}.{i}"));
            for &op in ops {
                stg.state_mut(s).ops.push(ScheduledOp::once(op));
            }
            stg.state_mut(s).expected_visits = prof.block_visits(b);
            ids.push(s);
        }
        chain_states.insert(b, ids);
    }

    // Rotated loops bypass their header on the back edge, so the header's
    // states run once per loop *entry*, not once per iteration.
    for (header, body_target) in &rotated_headers {
        if let (Some(states), Some(vh), Some(vb)) = (
            chain_states.get(header),
            prof.block_visits(*header),
            prof.block_visits(*body_target),
        ) {
            let entries = (vh - vb).max(1.0);
            for &s in states {
                stg.state_mut(s).expected_visits = Some(entries);
            }
        }
    }

    // Kernel states.
    let mut kernel_states: Vec<StateId> = Vec::new();
    for (_, k) in &live_kernels {
        let s = stg.add_state(format!("kernel@{}(II={})", k.header, k.ii));
        for &op in &k.body_ops {
            if is_datapath(&work, op) {
                stg.state_mut(s).ops.push(ScheduledOp {
                    op,
                    iter: 0,
                    weight: 1.0 / k.ii as f64,
                });
            }
        }
        // Per-execution visits: total empirical iterations × II (the
        // body-target visit count already accounts for outer-loop
        // nesting); fall back to the per-entry geometric estimate.
        let total_iters = prof.block_visits(k.body_target).unwrap_or(k.expected_iters);
        stg.state_mut(s).expected_visits = Some((total_iters * k.ii as f64).max(1.0));
        kernel_states.push(s);
    }

    // Phase states per group.
    let mut group_states: Vec<Vec<StateId>> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let group_entries = g.entries;
        let mut states = Vec::new();
        for (pi, ph) in g.phases.iter().enumerate() {
            let s = stg.add_state(format!("g{gi}.phase{pi}"));
            for &(li, rate) in &ph.active {
                for &(op, rel) in &g.rates[li].ops {
                    stg.state_mut(s).ops.push(ScheduledOp {
                        op,
                        iter: 0,
                        weight: rate * rel,
                    });
                }
            }
            stg.state_mut(s).expected_visits = Some(ph.length.max(1.0) * group_entries);
            states.push(s);
        }
        group_states.push(states);
    }

    // Resolution of block entry points into state distributions.
    struct Resolver<'a> {
        work: &'a Function,
        prof: &'a BranchProfile,
        plan: &'a HashMap<BlockId, Plan>,
        chain_states: &'a HashMap<BlockId, Vec<StateId>>,
        kernel_states: &'a [StateId],
        group_states: &'a [Vec<StateId>],
        groups: &'a [GroupInfo],
        memo: HashMap<BlockId, Vec<(Target, f64)>>,
        in_progress: HashSet<BlockId>,
        pads: HashMap<BlockId, StateId>,
    }

    impl Resolver<'_> {
        fn resolve(&mut self, stg: &mut Stg, b: BlockId) -> Vec<(Target, f64)> {
            if let Some(r) = self.memo.get(&b) {
                return r.clone();
            }
            if let Some(&pad) = self.pads.get(&b) {
                return vec![(Target::State(pad), 1.0)];
            }
            if self.in_progress.contains(&b) {
                // Cycle of empty blocks: materialize a pad state.
                let pad = stg.add_state(format!("pad@{b}"));
                self.pads.insert(b, pad);
                return vec![(Target::State(pad), 1.0)];
            }
            let result = match self.plan.get(&b) {
                Some(Plan::Kernel(ki)) => vec![(Target::State(self.kernel_states[*ki]), 1.0)],
                Some(Plan::Group(gi)) => {
                    let states = &self.group_states[*gi];
                    match states.first() {
                        Some(&s) => vec![(Target::State(s), 1.0)],
                        None => {
                            // Degenerate group with no phases: skip to exit.
                            let exit = self.groups[*gi].exit;
                            self.in_progress.insert(b);
                            let r = self.resolve(stg, exit);
                            self.in_progress.remove(&b);
                            r
                        }
                    }
                }
                _ => {
                    if let Some(states) = self.chain_states.get(&b) {
                        vec![(Target::State(states[0]), 1.0)]
                    } else {
                        // Empty block: fall through its terminator.
                        self.in_progress.insert(b);
                        let r = match self.work.block(b).term.clone() {
                            Terminator::Jump(t) => self.resolve(stg, t),
                            Terminator::Branch {
                                on_true, on_false, ..
                            } => {
                                let p = self.prof.prob_true(b);
                                let mut out = Vec::new();
                                for (t, w) in self.resolve(stg, on_true) {
                                    out.push((t, w * p));
                                }
                                for (t, w) in self.resolve(stg, on_false) {
                                    out.push((t, w * (1.0 - p)));
                                }
                                out
                            }
                            Terminator::Return(_) => vec![(Target::Done, 1.0)],
                        };
                        self.in_progress.remove(&b);
                        r
                    }
                }
            };
            self.memo.insert(b, result.clone());
            result
        }
    }

    let mut resolver = Resolver {
        work: &work,
        prof: &prof,
        plan: &plan,
        chain_states: &chain_states,
        kernel_states: &kernel_states,
        group_states: &group_states,
        groups: &groups,
        memo: HashMap::new(),
        in_progress: HashSet::new(),
        pads: HashMap::new(),
    };

    // Entry state.
    let entry_state = stg.add_state("entry");
    stg.state_mut(entry_state).expected_visits = Some(1.0);
    stg.set_entry(entry_state);
    let entry_targets = resolver.resolve(&mut stg, work.entry());
    let done = stg.done();
    for (t, p) in entry_targets {
        match t {
            Target::State(s) => stg.add_transition(entry_state, s, p, "start"),
            Target::Done => stg.add_transition(entry_state, done, p, "start"),
        }
    }

    // Helper to emit terminator edges from a state.
    let emit_edges = |stg: &mut Stg,
                      resolver: &mut Resolver,
                      from: StateId,
                      edges: Vec<(BlockId, f64, String)>,
                      to_done: f64| {
        for (block, p, label) in edges {
            if p <= 0.0 {
                continue;
            }
            for (t, w) in resolver.resolve(stg, block) {
                match t {
                    Target::State(s) => stg.add_transition(from, s, p * w, label.clone()),
                    Target::Done => {
                        let d = stg.done();
                        stg.add_transition(from, d, p * w, label.clone())
                    }
                }
            }
        }
        if to_done > 0.0 {
            let d = stg.done();
            stg.add_transition(from, d, to_done, "ret");
        }
    };

    // Normal block chains: intra-block transitions + terminator edges.
    for &b in &rpo {
        let Some(states) = chain_states.get(&b).cloned() else {
            continue;
        };
        for w in states.windows(2) {
            stg.add_transition(w[0], w[1], 1.0, "");
        }
        let last = *states.last().expect("non-empty chain");

        if let Some(rot) = rotations.get(&b) {
            // Rotated latch: append next-iteration header ops and branch
            // directly, bypassing the header states on the back edge.
            for &op in &rot.rotated_ops {
                stg.state_mut(last).ops.push(ScheduledOp {
                    op,
                    iter: 1,
                    weight: 1.0,
                });
            }
            let q = rot.continue_prob;
            emit_edges(
                &mut stg,
                &mut resolver,
                last,
                vec![
                    (rot.body_target, q, "loop".to_string()),
                    (rot.exit_target, 1.0 - q, "exit".to_string()),
                ],
                0.0,
            );
            let _ = rot.latch;
            continue;
        }

        match work.block(b).term.clone() {
            Terminator::Jump(t) => emit_edges(
                &mut stg,
                &mut resolver,
                last,
                vec![(t, 1.0, String::new())],
                0.0,
            ),
            Terminator::Branch {
                cond,
                on_true,
                on_false,
            } => {
                let p = prof.prob_true(b);
                let label = fact_ir::pretty::op_short_label(&work, cond);
                emit_edges(
                    &mut stg,
                    &mut resolver,
                    last,
                    vec![
                        (on_true, p, format!("{label}+")),
                        (on_false, 1.0 - p, format!("{label}-")),
                    ],
                    0.0,
                );
            }
            Terminator::Return(_) => {
                emit_edges(&mut stg, &mut resolver, last, vec![], 1.0);
            }
        }
    }

    // Kernel self-loops and exits.
    for ((_, k), &ks) in live_kernels.iter().zip(&kernel_states) {
        let visits = (k.expected_iters * k.ii as f64).max(1.0);
        let q = 1.0 - 1.0 / visits;
        stg.add_transition(ks, ks, q, "loop");
        emit_edges(
            &mut stg,
            &mut resolver,
            ks,
            vec![(k.exit_target, 1.0 - q, "exit".to_string())],
            0.0,
        );
    }

    // Group phase chains.
    for (g, states) in groups.iter().zip(&group_states) {
        for (pi, (&s, ph)) in states.iter().zip(&g.phases).enumerate() {
            let q = 1.0 - 1.0 / ph.length.max(1.0);
            if q > 0.0 {
                stg.add_transition(s, s, q, "phase");
            }
            let leave = 1.0 - q;
            if let Some(&next) = states.get(pi + 1) {
                stg.add_transition(s, next, leave, "next-phase");
            } else {
                emit_edges(
                    &mut stg,
                    &mut resolver,
                    s,
                    vec![(g.exit, leave, "exit".to_string())],
                    0.0,
                );
            }
        }
    }

    // Pad states (from empty-block cycles): single-cycle no-ops that fall
    // through their block's terminator.
    let pads: Vec<(BlockId, StateId)> = resolver.pads.iter().map(|(&b, &s)| (b, s)).collect();
    for (b, s) in pads {
        stg.state_mut(s).expected_visits = prof.block_visits(b);
        match work.block(b).term.clone() {
            Terminator::Jump(t) => emit_edges(
                &mut stg,
                &mut resolver,
                s,
                vec![(t, 1.0, String::new())],
                0.0,
            ),
            Terminator::Branch {
                on_true, on_false, ..
            } => {
                let p = prof.prob_true(b);
                emit_edges(
                    &mut stg,
                    &mut resolver,
                    s,
                    vec![(on_true, p, "+".into()), (on_false, 1.0 - p, "-".into())],
                    0.0,
                );
            }
            Terminator::Return(_) => emit_edges(&mut stg, &mut resolver, s, vec![], 1.0),
        }
    }

    stg.validate().map_err(ScheduleError::Internal)?;

    Ok(ScheduleResult {
        stg,
        function: work,
        selection,
        profile: prof,
        report,
    })
}

fn is_datapath(f: &Function, op: OpId) -> bool {
    matches!(
        f.op(op).kind,
        OpKind::Bin(..) | OpKind::Un(..) | OpKind::Load { .. } | OpKind::Store { .. }
    )
}

/// Attempts to fit every datapath op of the loop header into the latch's
/// final state (next-iteration copies). Returns the ops to fold, or `None`
/// if chaining or resources do not permit.
#[allow(clippy::too_many_arguments)]
fn try_rotation(
    f: &Function,
    l: &NaturalLoop,
    latch: BlockId,
    latch_sched: &BlockSchedule,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    clk: f64,
) -> Option<Vec<OpId>> {
    let last = latch_sched.len() - 1;

    // Header datapath ops, in block order.
    let header_ops: Vec<OpId> = f
        .block(l.header)
        .ops
        .iter()
        .copied()
        .filter(|&op| is_datapath(f, op))
        .collect();
    if header_ops.is_empty() {
        return None;
    }

    // Latch value of each header phi.
    let mut latch_value: HashMap<OpId, OpId> = HashMap::new();
    for &op in &f.block(l.header).ops {
        if let OpKind::Phi(incoming) = &f.op(op).kind {
            if let Some((_, v)) = incoming.iter().find(|(b, _)| *b == latch) {
                latch_value.insert(op, *v);
            } else {
                return None; // latch not a direct phi predecessor
            }
        }
    }

    // Ready time (ns within the latch's final state) of a value used by a
    // rotated op.
    let ready_in_last = |v: OpId, rotated: &HashMap<OpId, f64>| -> Option<f64> {
        if let Some(&t) = rotated.get(&v) {
            return Some(t);
        }
        let v = latch_value.get(&v).copied().unwrap_or(v);
        if let Some(&t) = rotated.get(&v) {
            return Some(t);
        }
        match latch_sched.placement.get(&v) {
            Some(p) => {
                if p.end_state == last {
                    Some(p.ready_ns)
                } else if p.end_state < last {
                    Some(0.0)
                } else {
                    None // not ready until after the final state
                }
            }
            // Defined outside the latch block (loop-invariant, phi, or an
            // earlier body block): available at state start.
            None => Some(0.0),
        }
    };

    // Resource slack in the final state.
    let mut used: HashMap<ResKey, u32> = HashMap::new();
    for &op in &latch_sched.states[last] {
        match &f.op(op).kind {
            OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => {
                *used.entry(ResKey::Mem(*mem)).or_insert(0) += 1;
            }
            _ => {
                if let Some(fu) = selection.fu_of(op) {
                    *used.entry(ResKey::Fu(fu)).or_insert(0) += 1;
                }
            }
        }
    }

    let mut rotated: HashMap<OpId, f64> = HashMap::new();
    for &op in &header_ops {
        let delay = match &f.op(op).kind {
            OpKind::Load { .. } | OpKind::Store { .. } => library.memory_delay_ns,
            _ => selection
                .fu_of(op)
                .map(|fu| library.spec(fu).delay_ns)
                .unwrap_or(0.0),
        };
        let mut start: f64 = 0.0;
        for v in f.op(op).kind.operands() {
            start = start.max(ready_in_last(v, &rotated)?);
        }
        let finish = start + delay;
        if finish > clk + 1e-9 {
            return None;
        }
        let res = match &f.op(op).kind {
            OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => ResKey::Mem(*mem),
            _ => ResKey::Fu(selection.fu_of(op)?),
        };
        let cap = match res {
            ResKey::Fu(fu) => alloc.count(fu),
            ResKey::Mem(_) => 1,
        };
        let u = used.entry(res).or_insert(0);
        if *u >= cap {
            return None;
        }
        *u += 1;
        rotated.insert(op, finish);
    }
    Some(header_ops)
}

/// Detects chains of independent sibling loops and plans their phases.
#[allow(clippy::too_many_arguments)]
fn find_groups(
    work: &Function,
    forest: &LoopForest,
    innermost: &[&NaturalLoop],
    kernels: &[LoopKernel],
    kernel_of_header: &HashMap<BlockId, usize>,
    prof: &BranchProfile,
    rpo_index: &HashMap<BlockId, usize>,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    seq_cycles: &dyn Fn(&NaturalLoop) -> f64,
) -> Vec<GroupInfo> {
    let _ = (library, forest);
    // Candidate loops: innermost, with a well-formed header test.
    let mut cands: Vec<&NaturalLoop> = innermost
        .iter()
        .copied()
        .filter(|l| header_continue(work, l, prof).is_some())
        .filter(|l| l.exits.len() == 1 && l.exits[0].0 == l.header)
        .collect();
    cands.sort_by_key(|l| rpo_index.get(&l.header).copied().unwrap_or(usize::MAX));

    // Glue-following: from a loop's exit target, skip datapath-free
    // straight-line blocks to find the next loop header.
    let follow = |mut b: BlockId| -> (BlockId, HashSet<BlockId>) {
        let mut glue = HashSet::new();
        for _ in 0..work.num_blocks() {
            let has_datapath = work.block(b).ops.iter().any(|&op| is_datapath(work, op));
            if has_datapath {
                break;
            }
            match work.block(b).term {
                Terminator::Jump(t) => {
                    glue.insert(b);
                    b = t;
                }
                _ => break,
            }
        }
        (b, glue)
    };

    // Memory and value footprints per loop.
    let footprint = |l: &NaturalLoop| {
        let mut loads = HashSet::new();
        let mut stores = HashSet::new();
        let mut defs = HashSet::new();
        let mut has_output = false;
        for &b in &l.body {
            for &op in &work.block(b).ops {
                defs.insert(op);
                match &work.op(op).kind {
                    OpKind::Load { mem, .. } => {
                        loads.insert(*mem);
                    }
                    OpKind::Store { mem, .. } => {
                        stores.insert(*mem);
                    }
                    OpKind::Output(..) => has_output = true,
                    _ => {}
                }
            }
        }
        (loads, stores, defs, has_output)
    };

    let mut used: HashSet<BlockId> = HashSet::new();
    let mut groups = Vec::new();

    let mut i = 0;
    while i < cands.len() {
        let first = cands[i];
        i += 1;
        if used.contains(&first.header) {
            continue;
        }
        // Grow a chain starting at `first`.
        let mut chain: Vec<&NaturalLoop> = vec![first];
        let mut glue_blocks: HashSet<BlockId> = HashSet::new();
        loop {
            let cur = *chain.last().expect("nonempty");
            let (_, _, exit_target) =
                header_continue(work, cur, prof).expect("candidate has header test");
            let (next_block, glue) = follow(exit_target);
            if let Some(next) = cands
                .iter()
                .find(|l| l.header == next_block && !used.contains(&l.header))
            {
                if chain.iter().any(|c| c.header == next.header) {
                    break;
                }
                glue_blocks.extend(glue);
                chain.push(next);
            } else {
                break;
            }
        }
        if chain.len() < 2 {
            continue;
        }

        // Build rate models and the dependence DAG.
        let mut rates: Vec<LoopRate> = Vec::new();
        let feet: Vec<_> = chain.iter().map(|l| footprint(l)).collect();
        let mut ok = true;
        for (li, l) in chain.iter().enumerate() {
            let freq = block_freq_in_loop(work, l, prof, rpo_index);
            let mut ops: Vec<(OpId, f64)> = Vec::new();
            for &b in &l.body {
                let fb = freq.get(&b).copied().unwrap_or(0.0);
                for &op in &work.block(b).ops {
                    if is_datapath(work, op) {
                        ops.push((op, fb));
                    }
                }
            }
            // Per-iteration resource demand, weighted by in-iteration
            // block execution frequency.
            let mut usage: HashMap<ResKey, f64> = HashMap::new();
            for &(op, rel) in &ops {
                let key = match &work.op(op).kind {
                    OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => Some(ResKey::Mem(*mem)),
                    _ => selection.fu_of(op).map(ResKey::Fu),
                };
                if let Some(k) = key {
                    *usage.entry(k).or_insert(0.0) += rel;
                }
            }
            // Any resource with zero capacity blocks the group.
            for key in usage.keys() {
                let cap = match key {
                    ResKey::Fu(fu) => alloc.count(*fu) as f64,
                    ResKey::Mem(_) => 1.0,
                };
                if cap == 0.0 {
                    ok = false;
                }
            }
            let (q, body_tgt, _) = header_continue(work, l, prof).expect("header test");
            let qc = q.clamp(0.0, 0.999_999);
            let expected_iters = empirical_iters(prof, l.header, body_tgt)
                .unwrap_or_else(|| (qc / (1.0 - qc)).max(1.0));
            let dep_cap = match kernel_of_header.get(&l.header) {
                Some(&ki) => 1.0 / kernels[ki].rec_mii as f64,
                None => 1.0 / seq_cycles(l),
            };
            // Dependences on earlier chain members.
            let mut deps = Vec::new();
            for (lj, (loads_j, stores_j, defs_j, out_j)) in feet.iter().enumerate().take(li) {
                let (loads_i, stores_i, _defs_i, out_i) = &feet[li];
                let mem_conflict = stores_j
                    .iter()
                    .any(|m| loads_i.contains(m) || stores_i.contains(m))
                    || stores_i
                        .iter()
                        .any(|m| loads_j.contains(m) || stores_j.contains(m));
                let val_conflict = l.body.iter().any(|&b| {
                    work.block(b).ops.iter().any(|&op| {
                        work.op(op)
                            .kind
                            .operands()
                            .iter()
                            .any(|v| defs_j.contains(v))
                    })
                });
                let out_conflict = *out_j && *out_i;
                if mem_conflict || val_conflict || out_conflict {
                    deps.push(lj);
                }
            }
            rates.push(LoopRate {
                header: l.header,
                ops,
                usage,
                dep_cap,
                expected_iters,
                deps,
            });
        }
        if !ok {
            continue;
        }
        // A group is only worthwhile if some pair is independent.
        let any_parallel = (0..rates.len())
            .any(|j| (0..j).any(|k| !rates[j].deps.contains(&k) && !rates[k].deps.contains(&j)));
        if !any_parallel {
            continue;
        }

        // Capacity map over all resources mentioned.
        let mut capacity: HashMap<ResKey, f64> = HashMap::new();
        for r in &rates {
            for key in r.usage.keys() {
                let cap = match key {
                    ResKey::Fu(fu) => alloc.count(*fu) as f64,
                    ResKey::Mem(_) => 1.0,
                };
                capacity.insert(*key, cap);
            }
        }
        let phases = plan_phases(&rates, &capacity);
        if phases.is_empty() {
            continue;
        }

        let last = *chain.last().expect("nonempty");
        let (_, _, group_exit) = header_continue(work, last, prof).expect("header test");
        // Entries of the whole group = entries of its first loop.
        let first_loop = chain[0];
        let entries = header_continue(work, first_loop, prof)
            .and_then(|(_, body_tgt, _)| {
                let vh = prof.block_visits(first_loop.header)?;
                let vb = prof.block_visits(body_tgt)?;
                Some((vh - vb).max(1.0))
            })
            .unwrap_or(1.0);
        let mut blocks: HashSet<BlockId> = glue_blocks;
        for l in &chain {
            blocks.extend(l.body.iter().copied());
            used.insert(l.header);
        }
        groups.push(GroupInfo {
            blocks,
            rates,
            phases,
            exit: group_exit,
            entries,
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::FuSpec;
    use fact_lang::compile;
    use fact_sim::{generate, profile, InputSpec, TraceSet};

    fn library() -> (FuLibrary, SelectionRules) {
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        for (name, e, d, a) in [
            ("a1", 1.3, 10.0, 1.5),
            ("sb1", 1.3, 10.0, 1.5),
            ("mt1", 2.3, 23.0, 3.9),
            ("cp1", 1.1, 10.0, 1.3),
            ("e1", 1.0, 5.0, 1.0),
            ("i1", 0.7, 5.0, 1.1),
        ] {
            lib.add(FuSpec {
                name: name.into(),
                energy_coeff: e,
                delay_ns: d,
                area: a,
            });
        }
        let rules = SelectionRules {
            add: lib.by_name("a1"),
            sub: lib.by_name("sb1"),
            mul: lib.by_name("mt1"),
            cmp: lib.by_name("cp1"),
            eq: lib.by_name("e1"),
            incr: lib.by_name("i1"),
            ..Default::default()
        };
        (lib, rules)
    }

    fn alloc(lib: &FuLibrary, pairs: &[(&str, u32)]) -> Allocation {
        let mut a = Allocation::new();
        for (n, c) in pairs {
            a.set(lib.by_name(n).unwrap(), *c);
        }
        a
    }

    fn traces(specs: &[(&str, InputSpec)]) -> TraceSet {
        let s: Vec<_> = specs
            .iter()
            .map(|(n, sp)| (n.to_string(), sp.clone()))
            .collect();
        generate(&s, 50, 99)
    }

    fn run(
        src: &str,
        pairs: &[(&str, u32)],
        specs: &[(&str, InputSpec)],
        opts: &SchedOptions,
    ) -> ScheduleResult {
        let f = compile(src).unwrap();
        let (lib, rules) = library();
        let a = alloc(&lib, pairs);
        let p = profile(&f, &traces(specs));
        schedule(&f, &lib, &rules, &a, &p, opts).unwrap()
    }

    fn baseline_opts() -> SchedOptions {
        SchedOptions {
            if_convert: false,
            rotate: false,
            pipeline: false,
            concurrent: false,
            ..Default::default()
        }
    }

    #[test]
    fn straightline_stg_validates() {
        let r = run(
            "proc f(a, b) { out y = (a + b) * (a - b); }",
            &[("a1", 1), ("sb1", 1), ("mt1", 1)],
            &[
                ("a", InputSpec::Uniform { lo: -9, hi: 9 }),
                ("b", InputSpec::Uniform { lo: -9, hi: 9 }),
            ],
            &baseline_opts(),
        );
        r.stg.validate().unwrap();
        // entry + at least the mul state + done.
        assert!(r.stg.num_states() >= 3);
    }

    #[test]
    fn while_loop_baseline_has_cycle() {
        let r = run(
            "proc f(n) { var i = 0; while (i < n) { i = i + 1; } out i = i; }",
            &[("i1", 1), ("cp1", 1)],
            &[("n", InputSpec::Uniform { lo: 0, hi: 20 })],
            &baseline_opts(),
        );
        r.stg.validate().unwrap();
        assert!(r.report.rotations.is_empty());
        assert!(r.report.kernels.is_empty());
        // Some state transitions back toward an earlier state (loop).
        assert!(r
            .stg
            .transitions()
            .iter()
            .any(|t| t.to.index() <= t.from.index() && t.to != r.stg.done()));
    }

    #[test]
    fn rotation_fires_on_counter_loop() {
        let opts = SchedOptions {
            rotate: true,
            ..baseline_opts()
        };
        let r = run(
            // Body has real work so the latch has a state to rotate into.
            "proc f(n, a) { var i = 0; var s = 0; while (i < n) { s = s + a; i = i + 1; } out s = s; }",
            &[("a1", 1), ("i1", 1), ("cp1", 1)],
            &[("n", InputSpec::Uniform { lo: 1, hi: 20 }), ("a", InputSpec::Uniform { lo: 0, hi: 9 })],
            &opts,
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.rotations.len(), 1, "{:?}", r.report);
        // Rotated next-iteration ops annotated with iter=1 exist somewhere.
        let has_iter1 = r
            .stg
            .state_ids()
            .any(|s| r.stg.state(s).ops.iter().any(|o| o.iter == 1));
        assert!(has_iter1);
    }

    #[test]
    fn kernel_forms_for_branch_free_loop() {
        let opts = SchedOptions {
            pipeline: true,
            ..baseline_opts()
        };
        let r = run(
            "proc f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1; } out s = s; }",
            &[("a1", 1), ("i1", 1), ("cp1", 1)],
            &[("n", InputSpec::Uniform { lo: 5, hi: 30 })],
            &opts,
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.kernels.len(), 1);
        assert_eq!(r.report.kernels[0].1, 1); // II = 1
                                              // Kernel state ops carry fractional-or-1 weights equal to 1/II = 1.
        let kstate = r
            .stg
            .state_ids()
            .find(|&s| {
                r.stg
                    .state(s)
                    .name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("kernel"))
            })
            .unwrap();
        assert!(!r.stg.state(kstate).ops.is_empty());
        assert!(r.stg.outgoing(kstate).any(|t| t.to == kstate));
    }

    #[test]
    fn gcd_pipelines_after_if_conversion() {
        let opts = SchedOptions::default();
        let r = run(
            r#"
            proc gcd(a, b) {
                while (a != b) {
                    if (a > b) { a = a - b; } else { b = b - a; }
                }
                out g = a;
            }
            "#,
            &[("sb1", 2), ("cp1", 1), ("e1", 1)],
            &[
                ("a", InputSpec::Uniform { lo: 1, hi: 50 }),
                ("b", InputSpec::Uniform { lo: 1, hi: 50 }),
            ],
            &opts,
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.if_converted, 1);
        assert_eq!(r.report.kernels.len(), 1);
        assert_eq!(r.report.kernels[0].1, 1);
    }

    #[test]
    fn independent_loops_form_concurrent_group() {
        let src = r#"
            proc two(n, m) {
                array x[64];
                array y[64];
                var i = 0;
                while (i < n) { x[i] = i + i; i = i + 1; }
                var j = 0;
                while (j < m) { y[j] = j + j; j = j + 1; }
            }
        "#;
        let opts = SchedOptions {
            concurrent: true,
            pipeline: true,
            ..baseline_opts()
        };
        let r = run(
            src,
            &[("a1", 2), ("i1", 2), ("cp1", 2)],
            &[
                ("n", InputSpec::Uniform { lo: 10, hi: 30 }),
                ("m", InputSpec::Uniform { lo: 10, hi: 30 }),
            ],
            &opts,
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.concurrent_groups, 1, "{:?}", r.report);
        // Phase states exist.
        assert!(r.stg.state_ids().any(|s| r
            .stg
            .state(s)
            .name
            .as_deref()
            .is_some_and(|n| n.contains("phase"))));
    }

    #[test]
    fn dependent_loops_do_not_group() {
        // Second loop reads what the first wrote: must not run in parallel.
        let src = r#"
            proc two(n) {
                array x[64];
                var i = 0;
                while (i < n) { x[i] = i + i; i = i + 1; }
                var j = 0;
                var s = 0;
                while (j < n) { s = s + x[j]; j = j + 1; }
                out s = s;
            }
        "#;
        let opts = SchedOptions {
            concurrent: true,
            ..baseline_opts()
        };
        let r = run(
            src,
            &[("a1", 2), ("i1", 2), ("cp1", 2)],
            &[("n", InputSpec::Uniform { lo: 5, hi: 30 })],
            &opts,
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.concurrent_groups, 0);
    }

    #[test]
    fn test1_schedule_shows_implicit_unrolling() {
        // The paper's TEST1 (Figure 1): with the full scheduler the loop
        // either pipelines (after if-conversion) or rotates.
        let src = r#"
            proc test1(c1, c2) {
                var i = 0;
                var a = 0;
                array x[128];
                while (c2 > i) {
                    if (i < c1) { a = 13 * (a + 7); } else { a = a + 17; }
                    i = i + 1;
                    x[i] = a;
                }
                out a = a;
            }
        "#;
        let r = run(
            src,
            &[("a1", 2), ("mt1", 1), ("cp1", 2), ("i1", 1)],
            &[
                ("c1", InputSpec::Uniform { lo: 0, hi: 37 }),
                ("c2", InputSpec::Uniform { lo: 20, hi: 80 }),
            ],
            &SchedOptions::default(),
        );
        r.stg.validate().unwrap();
        assert_eq!(r.report.if_converted, 1);
        assert!(!r.report.kernels.is_empty() || !r.report.rotations.is_empty());
    }

    #[test]
    fn options_off_still_schedules_cfi_behavior() {
        let src = r#"
            proc f(a, n) {
                var i = 0;
                var s = 0;
                while (i < n) {
                    if (s < a) { s = s + 3; } else { s = s - 1; }
                    i = i + 1;
                }
                out s = s;
            }
        "#;
        let r = run(
            src,
            &[("a1", 1), ("sb1", 1), ("cp1", 2), ("i1", 1)],
            &[
                ("a", InputSpec::Uniform { lo: 0, hi: 40 }),
                ("n", InputSpec::Uniform { lo: 0, hi: 20 }),
            ],
            &baseline_opts(),
        );
        r.stg.validate().unwrap();
        // Branch out of the if-block exists with both polarities.
        let has_split = r.stg.state_ids().any(|s| r.stg.outgoing(s).count() >= 2);
        assert!(has_split);
    }
}
