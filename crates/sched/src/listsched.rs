//! Resource-constrained list scheduling of one basic block, with operator
//! chaining under a clock-period constraint and multi-cycle operations.
//!
//! This is the innermost engine of the scheduler: each basic block is
//! compiled into a sequence of states (cycles). Within a state, operations
//! chain — an operation may start as soon as its same-state operands
//! finish, provided the chain fits in the clock period (the paper's
//! Example 1 schedules `++1` (13ns) chained with `<1` (12ns) in one 25ns
//! state). Operations slower than the clock occupy multiple consecutive
//! states on their functional unit.

use crate::resources::{Allocation, FuLibrary, FuSelection};
use fact_ir::{BlockId, Function, MemId, OpId, OpKind};
use std::collections::HashMap;

/// The schedule of one basic block.
#[derive(Clone, Debug, Default)]
pub struct BlockSchedule {
    /// Operations *starting* in each state, in issue order.
    pub states: Vec<Vec<OpId>>,
    /// For each scheduled datapath op: `(start_state, start_ns, end_state,
    /// finish_ns_within_end_state)`.
    pub placement: HashMap<OpId, OpPlacement>,
}

/// Where one operation landed in the block schedule.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OpPlacement {
    /// State in which the op starts.
    pub start_state: usize,
    /// Start offset within the start state, in ns.
    pub start_ns: f64,
    /// State in which the op's result becomes available.
    pub end_state: usize,
    /// Offset within `end_state` at which the result is ready, in ns. A
    /// value of 0 means "ready at the start of `end_state`" (multi-cycle
    /// results and results from earlier states).
    pub ready_ns: f64,
}

impl BlockSchedule {
    /// Number of states (cycles) the block occupies.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the block needs no cycles (only free operations).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Scheduling error.
#[derive(Clone, PartialEq, Debug)]
pub enum SchedError {
    /// An operation's unit has zero allocated instances.
    NoInstances {
        /// The unschedulable op.
        op: OpId,
        /// Name of the starved unit type.
        fu_name: String,
    },
    /// An operation cannot fit in the clock period even alone.
    ClockTooShort {
        /// The offending op.
        op: OpId,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoInstances { op, fu_name } => {
                write!(f, "op {op} needs unit `{fu_name}` but none are allocated")
            }
            SchedError::ClockTooShort { op } => {
                write!(f, "op {op} does not fit in the clock period")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Returns the intra-block dependency lists: for each op in the block, the
/// ops (also in the block) it must follow.
///
/// Includes data dependencies and memory/output ordering: a store depends
/// on every earlier access to the same memory; a load depends on the
/// latest earlier store to the same memory; outputs stay in program order
/// relative to each other (the output stream is observable).
pub fn block_dependencies(f: &Function, block: BlockId) -> HashMap<OpId, Vec<OpId>> {
    let ops = &f.block(block).ops;
    let in_block: HashMap<OpId, usize> = ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut deps: HashMap<OpId, Vec<OpId>> = HashMap::new();
    let mut last_store: HashMap<MemId, OpId> = HashMap::new();
    let mut accesses_since_store: HashMap<MemId, Vec<OpId>> = HashMap::new();
    let mut last_output: Option<OpId> = None;

    for &op in ops {
        let mut d: Vec<OpId> = f
            .op(op)
            .kind
            .operands()
            .into_iter()
            .filter(|v| in_block.contains_key(v) && in_block[v] < in_block[&op])
            .collect();
        match &f.op(op).kind {
            OpKind::Load { mem, .. } => {
                if let Some(&s) = last_store.get(mem) {
                    d.push(s);
                }
                accesses_since_store.entry(*mem).or_default().push(op);
            }
            OpKind::Store { mem, .. } => {
                if let Some(&s) = last_store.get(mem) {
                    d.push(s);
                }
                for &a in accesses_since_store.entry(*mem).or_default().iter() {
                    d.push(a);
                }
                accesses_since_store.insert(*mem, Vec::new());
                last_store.insert(*mem, op);
            }
            OpKind::Output(..) => {
                if let Some(prev) = last_output {
                    d.push(prev);
                }
                last_output = Some(op);
            }
            _ => {}
        }
        d.sort();
        d.dedup();
        deps.insert(op, d);
    }
    deps
}

/// The scheduling context shared across a block.
struct Ctx<'a> {
    f: &'a Function,
    library: &'a FuLibrary,
    selection: &'a FuSelection,
    alloc: &'a Allocation,
}

impl Ctx<'_> {
    /// Delay in ns of a datapath op; `None` for free ops.
    fn delay(&self, op: OpId) -> Option<f64> {
        match &self.f.op(op).kind {
            OpKind::Bin(..) | OpKind::Un(..) => self
                .selection
                .fu_of(op)
                .map(|fu| self.library.spec(fu).delay_ns),
            OpKind::Load { .. } | OpKind::Store { .. } => Some(self.library.memory_delay_ns),
            // Muxes are steering logic: modeled as free (their cost is in
            // the interconnect overhead), like phis/constants/IO.
            _ => None,
        }
    }
}

/// Schedules the operations of `block` under the given resources and
/// clock period.
///
/// # Errors
/// Returns [`SchedError::NoInstances`] when an op's unit has no allocated
/// instances, and [`SchedError::ClockTooShort`] when a single-cycle-class
/// op (memory access) exceeds the clock period.
pub fn schedule_block(
    f: &Function,
    block: BlockId,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    clk: f64,
) -> Result<BlockSchedule, SchedError> {
    let ops: Vec<OpId> = f.block(block).ops.clone();
    schedule_ops(
        f,
        &ops,
        &block_dependencies(f, block),
        library,
        selection,
        alloc,
        clk,
    )
}

/// Schedules an explicit op list with explicit dependencies. Used both for
/// whole blocks and for fused regions (if-converted loop bodies, rotation
/// candidates).
///
/// # Errors
/// See [`schedule_block`].
pub fn schedule_ops(
    f: &Function,
    ops: &[OpId],
    deps: &HashMap<OpId, Vec<OpId>>,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    clk: f64,
) -> Result<BlockSchedule, SchedError> {
    let cx = Ctx {
        f,
        library,
        selection,
        alloc,
    };

    // Priority: longest downstream chain in ns (critical-path first).
    let mut succs: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for (&op, ds) in deps {
        for &d in ds {
            succs.entry(d).or_default().push(op);
        }
    }
    let mut priority: HashMap<OpId, f64> = HashMap::new();
    // Process in reverse topological (program) order: deps point backward,
    // so reverse program order works.
    for &op in ops.iter().rev() {
        let own = cx.delay(op).unwrap_or(0.0);
        let down = succs
            .get(&op)
            .map(|ss| {
                ss.iter()
                    .map(|s| priority.get(s).copied().unwrap_or(0.0))
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        priority.insert(op, own + down);
    }

    let mut remaining_deps: HashMap<OpId, usize> = ops
        .iter()
        .map(|&o| (o, deps.get(&o).map_or(0, Vec::len)))
        .collect();
    let mut ready: Vec<OpId> = ops
        .iter()
        .copied()
        .filter(|o| remaining_deps[o] == 0)
        .collect();
    let mut placement: HashMap<OpId, OpPlacement> = HashMap::new();
    let mut states: Vec<Vec<OpId>> = Vec::new();
    // Per-state resource usage: FU counts and memory-port usage.
    let mut fu_busy: Vec<HashMap<crate::resources::FuId, u32>> = Vec::new();
    let mut mem_busy: Vec<HashMap<MemId, u32>> = Vec::new();
    let mut scheduled = 0usize;
    let mut cur_state = 0usize;

    let ensure_state = |states: &mut Vec<Vec<OpId>>,
                        fu_busy: &mut Vec<HashMap<crate::resources::FuId, u32>>,
                        mem_busy: &mut Vec<HashMap<MemId, u32>>,
                        s: usize| {
        while states.len() <= s {
            states.push(Vec::new());
            fu_busy.push(HashMap::new());
            mem_busy.push(HashMap::new());
        }
    };

    while scheduled < ops.len() {
        // Sort ready ops by priority (desc), then id for determinism.
        ready.sort_by(|a, b| {
            priority[b]
                .partial_cmp(&priority[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });

        let mut placed_any = false;
        let mut next_ready: Vec<OpId> = Vec::new();

        for &op in &ready {
            // Earliest data-ready point considering placed deps.
            let mut ready_state = cur_state;
            let mut ready_ns: f64 = 0.0;
            let mut deps_placed = true;
            for &d in deps.get(&op).into_iter().flatten() {
                match placement.get(&d) {
                    Some(p) => {
                        let (ds, dn) = (p.end_state, p.ready_ns);
                        if ds > ready_state {
                            ready_state = ds;
                            ready_ns = dn;
                        } else if ds == ready_state {
                            ready_ns = ready_ns.max(dn);
                        }
                    }
                    None => {
                        deps_placed = false;
                        break;
                    }
                }
            }
            if !deps_placed {
                // Dep scheduled later in this same pass round; retry later.
                next_ready.push(op);
                continue;
            }
            if ready_state < cur_state {
                ready_state = cur_state;
                ready_ns = 0.0;
            } else if ready_state == cur_state {
                // keep ready_ns
            } else {
                // Not ready until a future state; defer.
                next_ready.push(op);
                continue;
            }

            match cx.delay(op) {
                None => {
                    // Free op: completes instantly at its ready point.
                    placement.insert(
                        op,
                        OpPlacement {
                            start_state: ready_state,
                            start_ns: ready_ns,
                            end_state: ready_state,
                            ready_ns,
                        },
                    );
                    // Free ops are recorded in the state they resolve in,
                    // if any states exist; they never create states.
                    scheduled += 1;
                    placed_any = true;
                    for s in succs.get(&op).into_iter().flatten() {
                        let r = remaining_deps.get_mut(s).unwrap();
                        *r -= 1;
                        if *r == 0 {
                            next_ready.push(*s);
                        }
                    }
                    continue;
                }
                Some(delay) => {
                    // Resource lookup.
                    enum Res {
                        Fu(crate::resources::FuId),
                        Mem(MemId),
                    }
                    let res = match &cx.f.op(op).kind {
                        OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => Res::Mem(*mem),
                        _ => {
                            let fu = cx.selection.fu_of(op).expect("datapath op has unit");
                            if cx.alloc.count(fu) == 0 {
                                return Err(SchedError::NoInstances {
                                    op,
                                    fu_name: cx.library.spec(fu).name.clone(),
                                });
                            }
                            Res::Fu(fu)
                        }
                    };
                    if matches!(res, Res::Mem(_)) && delay > clk {
                        return Err(SchedError::ClockTooShort { op });
                    }

                    // Multi-cycle span when the op alone exceeds the clock.
                    let span = (delay / clk).ceil().max(1.0) as usize;
                    let chainable = span == 1;

                    // Candidate start: the ready point, but multi-cycle ops
                    // and ops that no longer fit by chaining move to the
                    // next state boundary.
                    let (start_state, start_ns) = if chainable && ready_ns + delay <= clk + 1e-9 {
                        (ready_state, ready_ns)
                    } else {
                        (
                            if ready_ns > 1e-12 {
                                ready_state + 1
                            } else {
                                ready_state
                            },
                            0.0,
                        )
                    };
                    if start_state > cur_state {
                        next_ready.push(op);
                        continue;
                    }

                    // Resource availability over [start_state, +span).
                    ensure_state(
                        &mut states,
                        &mut fu_busy,
                        &mut mem_busy,
                        start_state + span - 1,
                    );
                    let available = (0..span).all(|k| match &res {
                        Res::Fu(fu) => {
                            fu_busy[start_state + k].get(fu).copied().unwrap_or(0)
                                < cx.alloc.count(*fu)
                        }
                        Res::Mem(m) => mem_busy[start_state + k].get(m).copied().unwrap_or(0) < 1,
                    });
                    if !available {
                        next_ready.push(op);
                        continue;
                    }
                    for k in 0..span {
                        match &res {
                            Res::Fu(fu) => *fu_busy[start_state + k].entry(*fu).or_insert(0) += 1,
                            Res::Mem(m) => *mem_busy[start_state + k].entry(*m).or_insert(0) += 1,
                        }
                    }
                    let (end_state, end_ns) = if span == 1 {
                        (start_state, start_ns + delay)
                    } else {
                        // Result usable from the start of the state after
                        // the span (no chaining out of multi-cycle ops).
                        (start_state + span - 1, clk)
                    };
                    states[start_state].push(op);
                    placement.insert(
                        op,
                        OpPlacement {
                            start_state,
                            start_ns,
                            end_state,
                            ready_ns: if end_ns >= clk - 1e-9 { 0.0 } else { end_ns },
                        },
                    );
                    // Results landing exactly at the clock edge are
                    // consumed from a register at the start of the next
                    // state.
                    if end_ns >= clk - 1e-9 {
                        let p = placement.get_mut(&op).unwrap();
                        p.end_state += 1;
                        p.ready_ns = 0.0;
                    }
                    scheduled += 1;
                    placed_any = true;
                    for s in succs.get(&op).into_iter().flatten() {
                        let r = remaining_deps.get_mut(s).unwrap();
                        *r -= 1;
                        if *r == 0 {
                            next_ready.push(*s);
                        }
                    }
                }
            }
        }

        // Collect still-unplaced ready ops.
        for &op in &ready {
            if !placement.contains_key(&op) && !next_ready.contains(&op) {
                next_ready.push(op);
            }
        }
        ready = next_ready;
        ready.retain(|o| !placement.contains_key(o));

        if !placed_any {
            // Nothing placed this round: advance the cycle.
            cur_state += 1;
            ensure_state(&mut states, &mut fu_busy, &mut mem_busy, cur_state);
        }
    }

    // Trim trailing states with neither issued ops nor live resource
    // reservations (multi-cycle spans keep their tail states).
    while !states.is_empty() {
        let last = states.len() - 1;
        let busy = !states[last].is_empty()
            || fu_busy[last].values().any(|&c| c > 0)
            || mem_busy[last].values().any(|&c| c > 0);
        if busy {
            break;
        }
        states.pop();
        fu_busy.pop();
        mem_busy.pop();
    }

    Ok(BlockSchedule { states, placement })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{FuSpec, SelectionRules};
    use fact_lang::compile;

    /// §5 library subset: add 10ns, sub 10ns, mul 23ns, cmp 10ns, incr 5ns.
    fn setup(src: &str) -> (Function, FuLibrary, FuSelection) {
        let f = compile(src).unwrap();
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let add = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let sub = lib.add(FuSpec {
            name: "sb1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let mul = lib.add(FuSpec {
            name: "mt1".into(),
            energy_coeff: 2.3,
            delay_ns: 23.0,
            area: 3.9,
        });
        let cmp = lib.add(FuSpec {
            name: "cp1".into(),
            energy_coeff: 1.1,
            delay_ns: 10.0,
            area: 1.3,
        });
        let incr = lib.add(FuSpec {
            name: "i1".into(),
            energy_coeff: 0.7,
            delay_ns: 5.0,
            area: 1.1,
        });
        let rules = SelectionRules {
            add: Some(add),
            sub: Some(sub),
            mul: Some(mul),
            cmp: Some(cmp),
            eq: Some(cmp),
            incr: Some(incr),
            ..Default::default()
        };
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        (f, lib, sel)
    }

    fn alloc(lib: &FuLibrary, pairs: &[(&str, u32)]) -> Allocation {
        let mut a = Allocation::new();
        for (name, n) in pairs {
            a.set(lib.by_name(name).unwrap(), *n);
        }
        a
    }

    #[test]
    fn chains_two_adds_in_one_state() {
        // 10 + 10 = 20ns <= 25ns: one state.
        let (f, lib, sel) = setup("proc f(a, b, c) { out y = a + b + c; }");
        let a = alloc(&lib, &[("a1", 2)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn chain_breaks_on_clock() {
        // Three chained adds = 30ns > 25ns: two states.
        let (f, lib, sel) = setup("proc f(a, b, c, d) { out y = a + b + c + d; }");
        let a = alloc(&lib, &[("a1", 3)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn resource_contention_serializes() {
        // Two independent adds, one adder: two states (no chain possible
        // since same FU instance busy... chaining uses different ops).
        let (f, lib, sel) = setup("proc f(a, b, c, d) { out y = a + b; out z = c + d; }");
        let one = alloc(&lib, &[("a1", 1)]);
        let s1 = schedule_block(&f, f.entry(), &lib, &sel, &one, 25.0).unwrap();
        // One adder: both adds can still fit in one 25ns state? No — one
        // instance can do one op per state; chaining reuses *different*
        // units. So 2 states.
        assert_eq!(s1.len(), 2);
        let two = alloc(&lib, &[("a1", 2)]);
        let s2 = schedule_block(&f, f.entry(), &lib, &sel, &two, 25.0).unwrap();
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn multiplier_fits_in_25ns() {
        let (f, lib, sel) = setup("proc f(a, b) { out y = a * b; }");
        let a = alloc(&lib, &[("mt1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn multicycle_op_spans_states() {
        // 23ns multiplier with a 15ns clock: 2-cycle op.
        let (f, lib, sel) = setup("proc f(a, b) { out y = a * b; }");
        let a = alloc(&lib, &[("mt1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 15.0).unwrap();
        assert_eq!(s.len(), 2);
        let mul = *s
            .placement
            .iter()
            .find(|(op, _)| matches!(f.op(**op).kind, OpKind::Bin(fact_ir::BinOp::Mul, ..)))
            .unwrap()
            .0;
        let p = s.placement[&mul];
        assert_eq!(p.start_state, 0);
        assert_eq!(p.end_state, 2); // ready at start of state 2 (post-span)
    }

    #[test]
    fn add_then_mul_cannot_chain_in_25ns() {
        // 10 + 23 = 33 > 25: mul starts next state.
        let (f, lib, sel) = setup("proc f(a, b) { out y = (a + b) * b; }");
        let a = alloc(&lib, &[("a1", 1), ("mt1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn incr_chains_with_compare_like_figure_1c() {
        // Incrementer 5ns + comparator 10ns = 15 <= 25: single state, the
        // paper's S5 chaining.
        let (f, lib, sel) = setup("proc f(i, c) { out y = (i + 1) < c; }");
        let a = alloc(&lib, &[("i1", 1), ("cp1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn memory_port_limits_one_access_per_cycle() {
        let (f, lib, sel) = setup("proc f(i) { array x[8]; out y = x[i] + x[i + 1]; }");
        let a = alloc(&lib, &[("a1", 1), ("i1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        // Two loads of the same memory cannot share a cycle.
        assert!(s.len() >= 2, "got {} states", s.len());
    }

    #[test]
    fn distinct_memories_access_in_parallel() {
        let (f, lib, sel) = setup("proc f(i) { array x[8]; array y[8]; out o = x[i] + y[i]; }");
        let a = alloc(&lib, &[("a1", 1)]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        // Loads in cycle 0 (15ns, no chain into add: 15+10=25 <= 25 fits!)
        // so this can be a single state.
        assert!(s.len() <= 2);
    }

    #[test]
    fn store_load_ordering_is_respected() {
        let (f, lib, sel) = setup("proc f(i, v) { array x[8]; x[i] = v; out y = x[i]; }");
        let a = alloc(&lib, &[]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        let (store, load) = {
            let mut st = None;
            let mut ld = None;
            for b in f.block_ids() {
                for &op in &f.block(b).ops {
                    match f.op(op).kind {
                        OpKind::Store { .. } => st = Some(op),
                        OpKind::Load { .. } => ld = Some(op),
                        _ => {}
                    }
                }
            }
            (st.unwrap(), ld.unwrap())
        };
        assert!(s.placement[&store].start_state < s.placement[&load].start_state);
    }

    #[test]
    fn zero_allocation_is_an_error() {
        let (f, lib, sel) = setup("proc f(a) { out y = a + a; }");
        let a = alloc(&lib, &[("mt1", 1)]); // no adders
        let err = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap_err();
        assert!(matches!(err, SchedError::NoInstances { .. }));
    }

    #[test]
    fn free_only_block_is_empty() {
        let (f, lib, sel) = setup("proc f(a) { out y = a; }");
        let a = alloc(&lib, &[]);
        let s = schedule_block(&f, f.entry(), &lib, &sel, &a, 25.0).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn dependencies_include_memory_ordering() {
        let f = compile("proc f(i, v) { array x[8]; x[i] = v; x[i] = v + 1; }").unwrap();
        let deps = block_dependencies(&f, f.entry());
        let stores: Vec<OpId> = f
            .block(f.entry())
            .ops
            .iter()
            .copied()
            .filter(|&o| matches!(f.op(o).kind, OpKind::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 2);
        assert!(deps[&stores[1]].contains(&stores[0]));
    }
}
