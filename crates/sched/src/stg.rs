//! The state transition graph (STG): the scheduler's output (§2.1).
//!
//! States represent clock cycles of the controller; each state lists the
//! operations executed in that cycle, annotated with the loop iteration
//! they belong to (Figure 1(c): state `S5` executes `S.0`, `++1_1`, and
//! `<1_1`). Transitions carry the probability of being taken, derived from
//! profiled branch probabilities, which drives the Markov analysis of \[10\].
//!
//! Kernel states produced by loop pipelining and concurrent-loop phases
//! additionally carry fractional *rates*: an operation with weight 0.5
//! executes, on average, every other visit to the state. This keeps the
//! energy accounting of §2.2 exact for steady-state overlapped schedules
//! without enumerating the (possibly unbounded) product state space.

use fact_ir::{Function, OpId};
use std::collections::HashMap;
use std::fmt;

/// Identifies a state within an [`Stg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The raw index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One operation scheduled into a state.
#[derive(Clone, PartialEq, Debug)]
pub struct ScheduledOp {
    /// The IR operation.
    pub op: OpId,
    /// The loop-iteration annotation (0 for the current iteration; 1 for
    /// next-iteration operations folded in by implicit unrolling).
    pub iter: u32,
    /// Expected executions per visit of the state (1.0 for ordinary
    /// states; fractional in pipelined/parallel kernel states).
    pub weight: f64,
}

impl ScheduledOp {
    /// A once-per-visit scheduled op of the current iteration.
    pub fn once(op: OpId) -> Self {
        ScheduledOp {
            op,
            iter: 0,
            weight: 1.0,
        }
    }
}

/// A controller state (one clock cycle).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct State {
    /// Operations executed in this state.
    pub ops: Vec<ScheduledOp>,
    /// Optional display name.
    pub name: Option<String>,
    /// Empirical expected visits per execution, when the scheduler can
    /// derive them from profiled block-visit counts. Exact by linearity of
    /// expectation; the estimator prefers these over the first-order
    /// Markov solution when every state carries one (see
    /// `fact-estim::markov`).
    pub expected_visits: Option<f64>,
}

/// A transition between states.
#[derive(Clone, PartialEq, Debug)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Probability that this transition is taken from `from`.
    pub prob: f64,
    /// Display label (condition), e.g. `">1"` or `"!<1"`.
    pub label: String,
}

/// A complete state transition graph.
#[derive(Clone, Debug)]
pub struct Stg {
    states: Vec<State>,
    transitions: Vec<Transition>,
    entry: StateId,
    done: StateId,
}

impl Stg {
    /// Creates an STG containing only the entry and absorbing done states.
    ///
    /// The entry state is a real cycle (controller reset/launch); `done`
    /// is the absorbing completion marker and costs no cycle.
    pub fn new() -> Self {
        let mut stg = Stg {
            states: Vec::new(),
            transitions: Vec::new(),
            entry: StateId(0),
            done: StateId(0),
        };
        stg.done = stg.add_state("done");
        stg.entry = stg.done;
        stg
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(State {
            ops: Vec::new(),
            name: Some(name.into()),
            expected_visits: None,
        });
        id
    }

    /// Sets the entry state.
    pub fn set_entry(&mut self, entry: StateId) {
        self.entry = entry;
    }

    /// The entry state.
    pub fn entry(&self) -> StateId {
        self.entry
    }

    /// The absorbing done state.
    pub fn done(&self) -> StateId {
        self.done
    }

    /// Number of states, including `done`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Accesses a state.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Mutably accesses a state.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn state_mut(&mut self, id: StateId) -> &mut State {
        &mut self.states[id.index()]
    }

    /// Iterates over all state ids (including `done`).
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Adds a transition.
    pub fn add_transition(
        &mut self,
        from: StateId,
        to: StateId,
        prob: f64,
        label: impl Into<String>,
    ) {
        self.transitions.push(Transition {
            from,
            to,
            prob,
            label: label.into(),
        });
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `state`.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Redirects every transition into `from` to point at `to`, and every
    /// transition out of `from` is removed. Used when fusing empty states.
    pub fn bypass_state(&mut self, from: StateId, to: StateId) {
        self.transitions.retain(|t| t.from != from);
        for t in &mut self.transitions {
            if t.to == from {
                t.to = to;
            }
        }
        if self.entry == from {
            self.entry = to;
        }
    }

    /// Checks structural sanity: outgoing probabilities of every
    /// non-absorbing state sum to ~1, all referenced states exist, `done`
    /// has no outgoing transitions, and every state reaches `done`.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.transitions {
            if t.from.index() >= self.states.len() || t.to.index() >= self.states.len() {
                return Err(format!("transition references missing state: {t:?}"));
            }
            if !(0.0..=1.0 + 1e-9).contains(&t.prob) {
                return Err(format!("transition probability out of range: {t:?}"));
            }
            if t.from == self.done {
                return Err("done state must be absorbing".to_string());
            }
        }
        for s in self.state_ids() {
            if s == self.done {
                continue;
            }
            let total: f64 = self.outgoing(s).map(|t| t.prob).sum();
            // States disconnected from the live graph may have no
            // outgoing edges only if nothing reaches them.
            let has_in = s == self.entry || self.transitions.iter().any(|t| t.to == s);
            if has_in && (total - 1.0).abs() > 1e-6 {
                return Err(format!(
                    "state {s} outgoing probabilities sum to {total}, expected 1"
                ));
            }
        }
        // Reachability of done from entry.
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![self.entry];
        seen[self.entry.index()] = true;
        while let Some(s) = stack.pop() {
            for t in self.outgoing(s) {
                if !seen[t.to.index()] {
                    seen[t.to.index()] = true;
                    stack.push(t.to);
                }
            }
        }
        if !seen[self.done.index()] {
            return Err("done state unreachable from entry".to_string());
        }
        Ok(())
    }

    /// Expected functional-unit usage per state, as `(state, fu-name,
    /// expected ops)` rows — the per-cycle utilization view of Figure 3.
    pub fn utilization_table(
        &self,
        f: &Function,
        selection: &crate::resources::FuSelection,
        library: &crate::resources::FuLibrary,
    ) -> Vec<(StateId, String, f64)> {
        let mut rows = Vec::new();
        for s in self.state_ids() {
            let mut per_fu: HashMap<String, f64> = HashMap::new();
            for sop in &self.state(s).ops {
                if let Some(fu) = selection.fu_of(sop.op) {
                    *per_fu.entry(library.spec(fu).name.clone()).or_insert(0.0) += sop.weight;
                }
                if let Some(mem) = f.op(sop.op).kind.memory() {
                    let name = format!("mem:{}", f.memory(mem).name);
                    *per_fu.entry(name).or_insert(0.0) += sop.weight;
                }
            }
            let mut entries: Vec<_> = per_fu.into_iter().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, w) in entries {
                rows.push((s, name, w));
            }
        }
        rows
    }

    /// Renders the STG as text in the style of Figure 1(c): one line per
    /// state listing `label.iter` ops, then transitions with probabilities.
    pub fn pretty(&self, f: &Function) -> String {
        let mut out = String::new();
        for s in self.state_ids() {
            let st = self.state(s);
            let name = st.name.clone().unwrap_or_default();
            let ops: Vec<String> = st
                .ops
                .iter()
                .map(|sop| {
                    let mut label = fact_ir::pretty::op_short_label(f, sop.op);
                    if sop.iter > 0 {
                        label.push_str(&format!("_{}", sop.iter));
                    }
                    if (sop.weight - 1.0).abs() > 1e-9 {
                        label.push_str(&format!("@{:.2}", sop.weight));
                    }
                    label
                })
                .collect();
            out.push_str(&format!("{s} [{name}]: {{{}}}\n", ops.join(", ")));
            for t in self.outgoing(s) {
                out.push_str(&format!(
                    "  -> {} ({:.3}){}\n",
                    t.to,
                    t.prob,
                    if t.label.is_empty() {
                        String::new()
                    } else {
                        format!(" on {}", t.label)
                    }
                ));
            }
        }
        out
    }

    /// Renders the STG as a Graphviz digraph.
    pub fn to_dot(&self, f: &Function) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph stg {{");
        let _ = writeln!(s, "  node [shape=box, fontsize=10];");
        for id in self.state_ids() {
            let st = self.state(id);
            let ops: Vec<String> = st
                .ops
                .iter()
                .map(|sop| {
                    let mut l = fact_ir::pretty::op_short_label(f, sop.op);
                    if sop.iter > 0 {
                        l.push_str(&format!("_{}", sop.iter));
                    }
                    l
                })
                .collect();
            let _ = writeln!(
                s,
                "  s{} [label=\"{}\\n{}\"];",
                id.0,
                id,
                ops.join(" ").replace('"', "'")
            );
        }
        for t in &self.transitions {
            let _ = writeln!(
                s,
                "  s{} -> s{} [label=\"{:.2}\"];",
                t.from.0, t.to.0, t.prob
            );
        }
        let _ = writeln!(s, "}}");
        s
    }
}

impl Default for Stg {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Stg {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, b, 1.0, "");
        let done = stg.done();
        stg.add_transition(b, done, 1.0, "");
        stg
    }

    #[test]
    fn valid_chain_passes() {
        two_state().validate().unwrap();
    }

    #[test]
    fn probabilities_must_sum_to_one() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        stg.set_entry(a);
        let done = stg.done();
        stg.add_transition(a, done, 0.6, "");
        let err = stg.validate().unwrap_err();
        assert!(err.contains("sum"), "{err}");
    }

    #[test]
    fn done_must_be_absorbing() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        stg.set_entry(a);
        let done = stg.done();
        stg.add_transition(a, done, 1.0, "");
        stg.add_transition(done, a, 1.0, "");
        assert!(stg.validate().is_err());
    }

    #[test]
    fn done_must_be_reachable() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        stg.set_entry(a);
        stg.add_transition(a, a, 1.0, "");
        let err = stg.validate().unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn bypass_rewires_transitions() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        let c = stg.add_state("c");
        stg.set_entry(a);
        stg.add_transition(a, b, 1.0, "");
        stg.add_transition(b, c, 1.0, "");
        let done = stg.done();
        stg.add_transition(c, done, 1.0, "");
        stg.bypass_state(b, c);
        stg.validate().unwrap();
        assert!(stg.outgoing(a).any(|t| t.to == c));
        assert_eq!(stg.outgoing(b).count(), 0);
    }

    #[test]
    fn self_loop_probabilities_validate() {
        let mut stg = Stg::new();
        let k = stg.add_state("kernel");
        stg.set_entry(k);
        stg.add_transition(k, k, 0.98, "loop");
        let done = stg.done();
        stg.add_transition(k, done, 0.02, "exit");
        stg.validate().unwrap();
    }

    #[test]
    fn pretty_mentions_iteration_annotations() {
        let mut f = fact_ir::Function::new("t");
        let e = f.entry();
        let a = f.emit_input(e, "a");
        let inc = f.emit(
            e,
            fact_ir::Op::with_label(fact_ir::OpKind::Bin(fact_ir::BinOp::Add, a, a), "++1"),
        );
        let mut stg = Stg::new();
        let s = stg.add_state("s");
        stg.set_entry(s);
        stg.state_mut(s).ops.push(ScheduledOp {
            op: inc,
            iter: 1,
            weight: 1.0,
        });
        let done = stg.done();
        stg.add_transition(s, done, 1.0, "");
        let text = stg.pretty(&f);
        assert!(text.contains("++1_1"), "{text}");
    }
}
