//! Memoized block scheduling for incremental candidate evaluation.
//!
//! The search in `fact-core` reschedules a whole candidate CDFG for every
//! move, but most transformations touch one or two blocks — every other
//! block's list schedule is recomputed from scratch only to come out
//! identical. [`ScheduleMemo`] caches per-block schedules keyed by a
//! *structural* hash of everything [`schedule_block`] actually depends on,
//! so untouched blocks (in this candidate, in sibling candidates, and in
//! candidates of past evaluations) are spliced from cache.
//!
//! # What the key must capture
//!
//! [`schedule_block`] is a pure function of:
//!
//! * the clock period and the library's memory delay;
//! * each op's kind, in block order, with operands encoded as *in-block
//!   earlier position* or "external" — [`block_dependencies`] only
//!   considers in-block earlier defs, and external operands are ready at
//!   state 0 regardless of identity;
//! * each datapath op's functional unit (delay and allocation count
//!   included, so the memo stays safe across libraries/allocations);
//! * raw [`MemId`]s of loads/stores (memory-port conflicts and ordering
//!   are per-memory);
//! * the *relative order of raw `OpId`s* within the block: the ready-list
//!   sort breaks priority ties with `OpId` order, so the block's `OpId`
//!   rank permutation is part of the scheduling input even though the
//!   absolute ids are not.
//!
//! Cached schedules are stored in *dense* form (in-block positions) and
//! remapped to the caller's real `OpId`s on a hit, which is what makes one
//! entry serve structurally identical blocks of different candidates.
//! Results are bit-identical to a fresh [`schedule_block`] call; the
//! equivalence tests below and the incremental-vs-full property tests in
//! `fact-core` enforce this.

use crate::listsched::{schedule_block, BlockSchedule, OpPlacement, SchedError};
use crate::resources::{Allocation, FuLibrary, FuSelection};
use fact_ir::{BlockId, Function, OpId, OpKind};
use std::collections::HashMap;
use std::sync::Mutex;

/// A block schedule with ops named by in-block position.
#[derive(Clone, Debug)]
struct DenseSchedule {
    states: Vec<Vec<u32>>,
    placement: Vec<Option<OpPlacement>>,
}

/// A scheduling error with the offending op named by in-block position.
#[derive(Clone, Debug)]
enum DenseError {
    NoInstances { pos: u32, fu_name: String },
    ClockTooShort { pos: u32 },
}

type DenseOutcome = Result<DenseSchedule, DenseError>;

/// A shared, thread-safe cache of per-block schedules.
///
/// Sharded like `fact-core`'s evaluation cache so concurrent candidate
/// evaluations (the parallel search) do not serialize on one lock.
pub struct ScheduleMemo {
    shards: Vec<Mutex<HashMap<u64, DenseOutcome>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Default for ScheduleMemo {
    fn default() -> Self {
        ScheduleMemo::with_shards(16)
    }
}

impl ScheduleMemo {
    /// Creates a memo with the given shard count (rounded up to 1).
    pub fn with_shards(n: usize) -> Self {
        ScheduleMemo {
            shards: (0..n.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` over the memo's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of cached block schedules.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`schedule_block`] through the memo. Returns the schedule plus
    /// whether it was answered from cache; the schedule (or error) is
    /// bit-identical to a fresh call either way.
    ///
    /// # Errors
    /// See [`schedule_block`].
    pub fn schedule_block_memoized(
        &self,
        f: &Function,
        block: BlockId,
        library: &FuLibrary,
        selection: &FuSelection,
        alloc: &Allocation,
        clk: f64,
    ) -> (Result<BlockSchedule, SchedError>, bool) {
        let ops = &f.block(block).ops;
        let key = block_key(f, block, library, selection, alloc, clk);
        let shard = &self.shards[(key as usize) % self.shards.len()];
        let cached = shard.lock().ok().and_then(|g| g.get(&key).cloned());
        if let Some(outcome) = cached {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return (undense(outcome, ops), true);
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let fresh = schedule_block(f, block, library, selection, alloc, clk);
        if let Ok(mut guard) = shard.lock() {
            guard.insert(key, dense(&fresh, ops));
        }
        (fresh, false)
    }
}

/// Converts a scheduling outcome to position-indexed form.
fn dense(outcome: &Result<BlockSchedule, SchedError>, ops: &[OpId]) -> DenseOutcome {
    let pos: HashMap<OpId, u32> = ops
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect();
    match outcome {
        Ok(bs) => Ok(DenseSchedule {
            states: bs
                .states
                .iter()
                .map(|s| s.iter().map(|o| pos[o]).collect())
                .collect(),
            placement: ops.iter().map(|o| bs.placement.get(o).copied()).collect(),
        }),
        Err(SchedError::NoInstances { op, fu_name }) => Err(DenseError::NoInstances {
            pos: pos[op],
            fu_name: fu_name.clone(),
        }),
        Err(SchedError::ClockTooShort { op }) => Err(DenseError::ClockTooShort { pos: pos[op] }),
    }
}

/// Rebuilds a real-`OpId` outcome from position-indexed form.
fn undense(outcome: DenseOutcome, ops: &[OpId]) -> Result<BlockSchedule, SchedError> {
    match outcome {
        Ok(d) => Ok(BlockSchedule {
            states: d
                .states
                .iter()
                .map(|s| s.iter().map(|&p| ops[p as usize]).collect())
                .collect(),
            placement: d
                .placement
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|p| (ops[i], p)))
                .collect(),
        }),
        Err(DenseError::NoInstances { pos, fu_name }) => Err(SchedError::NoInstances {
            op: ops[pos as usize],
            fu_name,
        }),
        Err(DenseError::ClockTooShort { pos }) => Err(SchedError::ClockTooShort {
            op: ops[pos as usize],
        }),
    }
}

/// A splitmix64-style accumulator (no external deps; quality comparable
/// to `fact-core`'s context hasher).
struct Hasher(u64);

impl Hasher {
    fn new(seed: u64) -> Self {
        Hasher(seed ^ 0x9E37_79B9_7F4A_7C15)
    }
    fn write(&mut self, v: u64) -> &mut Self {
        let mut z = self.0.rotate_left(7) ^ v;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
        self
    }
    fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            self.write(u64::from_le_bytes(v));
        }
        self
    }
}

/// Hashes everything `schedule_block` depends on (see module docs).
fn block_key(
    f: &Function,
    block: BlockId,
    library: &FuLibrary,
    selection: &FuSelection,
    alloc: &Allocation,
    clk: f64,
) -> u64 {
    let ops = &f.block(block).ops;
    let pos: HashMap<OpId, u32> = ops
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect();
    let mut h = Hasher::new(0x5CED_B10C);
    h.write(clk.to_bits())
        .write(library.memory_delay_ns.to_bits())
        .write(ops.len() as u64);
    // Operand encoding: in-block earlier defs by position (they create
    // dependencies), everything else — external values, same-block later
    // defs reachable only through phis — as one marker, because the list
    // scheduler treats them all as ready at state start.
    let operand = |h: &mut Hasher, i: usize, v: OpId| {
        match pos.get(&v) {
            Some(&p) if (p as usize) < i => h.write(2 + p as u64),
            _ => h.write(1),
        };
    };
    let mut buf: Vec<OpId> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let kind = &f.op(op).kind;
        let tag = match kind {
            OpKind::Const(_) => 1u64,
            OpKind::Input(_) => 2,
            OpKind::Bin(..) => 3,
            OpKind::Un(..) => 4,
            OpKind::Mux { .. } => 5,
            OpKind::Phi(_) => 6,
            OpKind::Load { .. } => 7,
            OpKind::Store { .. } => 8,
            OpKind::Output(..) => 9,
        };
        h.write(tag);
        buf.clear();
        kind.operands_into(&mut buf);
        h.write(buf.len() as u64);
        for &v in &buf {
            operand(&mut h, i, v);
        }
        match kind {
            OpKind::Bin(..) | OpKind::Un(..) => match selection.fu_of(op) {
                Some(fu) => {
                    let spec = library.spec(fu);
                    h.write(1 + fu.0 as u64)
                        .write(spec.delay_ns.to_bits())
                        .write(alloc.count(fu) as u64)
                        .write_bytes(spec.name.as_bytes());
                }
                None => {
                    h.write(0);
                }
            },
            OpKind::Load { mem, .. } | OpKind::Store { mem, .. } => {
                h.write(mem.index() as u64);
            }
            _ => {}
        }
    }
    // The block's OpId rank permutation: the ready-list sort breaks
    // priority ties by raw OpId, so relative id order is a scheduling
    // input even though absolute ids are not.
    let mut sorted: Vec<OpId> = ops.clone();
    sorted.sort_unstable();
    let rank: HashMap<OpId, u32> = sorted
        .iter()
        .enumerate()
        .map(|(r, &o)| (o, r as u32))
        .collect();
    for &op in ops {
        h.write(rank[&op] as u64);
    }
    h.write(0x5CED_B10C);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{FuSpec, SelectionRules};
    use fact_ir::BinOp;
    use fact_lang::compile;

    fn setup(src: &str) -> (Function, FuLibrary, FuSelection, Allocation) {
        let f = compile(src).unwrap();
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let add = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let mul = lib.add(FuSpec {
            name: "mt1".into(),
            energy_coeff: 2.3,
            delay_ns: 23.0,
            area: 3.9,
        });
        let cmp = lib.add(FuSpec {
            name: "cp1".into(),
            energy_coeff: 1.1,
            delay_ns: 10.0,
            area: 1.3,
        });
        let rules = SelectionRules {
            add: Some(add),
            mul: Some(mul),
            cmp: Some(cmp),
            eq: Some(cmp),
            incr: Some(add),
            ..Default::default()
        };
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let mut a = Allocation::new();
        a.set(add, 2);
        a.set(mul, 1);
        a.set(cmp, 1);
        (f, lib, sel, a)
    }

    fn assert_same(a: &Result<BlockSchedule, SchedError>, b: &Result<BlockSchedule, SchedError>) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.states, y.states);
                assert_eq!(x.placement.len(), y.placement.len());
                for (op, p) in &x.placement {
                    assert_eq!(y.placement.get(op), Some(p), "placement differs for {op}");
                }
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("outcomes diverge: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn memoized_equals_fresh_on_every_block() {
        let (f, lib, sel, alloc) =
            setup("proc f(n, a) { var i = 0; var s = 0; while (i < n) { s = s + a * i; i = i + 1; } out s = s; }");
        let memo = ScheduleMemo::default();
        for b in f.block_ids() {
            let fresh = schedule_block(&f, b, &lib, &sel, &alloc, 25.0);
            let (cold, hit0) = memo.schedule_block_memoized(&f, b, &lib, &sel, &alloc, 25.0);
            assert!(!hit0);
            let (warm, hit1) = memo.schedule_block_memoized(&f, b, &lib, &sel, &alloc, 25.0);
            assert!(hit1);
            assert_same(&fresh, &cold);
            assert_same(&fresh, &warm);
        }
        let (h, m) = memo.stats();
        assert_eq!(h as usize, f.block_ids().count());
        assert_eq!(m as usize, f.block_ids().count());
    }

    #[test]
    fn structurally_identical_blocks_hit_across_functions() {
        // Same block structure, different raw OpIds: the second function's
        // arena is padded with detached ops, shifting every id by 100. A
        // hit must remap cached positions onto the shifted ids.
        fn build_shifted(shift: usize) -> Function {
            let mut f = Function::new("p");
            for _ in 0..shift {
                f.emit_detached(fact_ir::Op::new(OpKind::Const(0)));
            }
            let e = f.entry();
            let a = f.emit_input(e, "a");
            let b = f.emit_input(e, "b");
            let m = f.emit_bin(e, BinOp::Mul, a, b);
            let s = f.emit_bin(e, BinOp::Add, m, a);
            f.emit_output(e, "y", s);
            f
        }
        let (_, lib, _, alloc) = setup("proc f(a, b) { out y = a * b + a; }");
        let rules = SelectionRules {
            add: lib.by_name("a1"),
            mul: lib.by_name("mt1"),
            ..Default::default()
        };
        let f1 = build_shifted(0);
        let f2 = build_shifted(100);
        let sel1 = FuSelection::from_rules(&f1, &rules).unwrap();
        let sel2 = FuSelection::from_rules(&f2, &rules).unwrap();
        let memo = ScheduleMemo::default();
        let (_, hit1) = memo.schedule_block_memoized(&f1, f1.entry(), &lib, &sel1, &alloc, 25.0);
        let (r2, hit2) = memo.schedule_block_memoized(&f2, f2.entry(), &lib, &sel2, &alloc, 25.0);
        assert!(!hit1);
        assert!(hit2, "identical structure must be answered from cache");
        let fresh2 = schedule_block(&f2, f2.entry(), &lib, &sel2, &alloc, 25.0);
        assert_same(&fresh2, &r2);
    }

    #[test]
    fn different_clock_or_alloc_misses() {
        let (f, lib, sel, alloc) = setup("proc f(a, b) { out y = a * b + a; }");
        let memo = ScheduleMemo::default();
        let _ = memo.schedule_block_memoized(&f, f.entry(), &lib, &sel, &alloc, 25.0);
        let (_, hit_clk) = memo.schedule_block_memoized(&f, f.entry(), &lib, &sel, &alloc, 15.0);
        assert!(!hit_clk, "clock period is part of the key");
        let mut alloc2 = alloc.clone();
        alloc2.set(lib.by_name("a1").unwrap(), 1);
        let (_, hit_alloc) = memo.schedule_block_memoized(&f, f.entry(), &lib, &sel, &alloc2, 25.0);
        assert!(!hit_alloc, "allocation counts are part of the key");
    }

    #[test]
    fn operand_swap_changes_key_only_when_it_changes_structure() {
        // a*b+c vs a*b+d: same shape but the adder's second operand is
        // external either way, so both hash equal — and schedule equal.
        let (f1, lib, sel1, alloc) = setup("proc f(a, b, c) { out y = a * b + c; }");
        let (f2, _, sel2, _) = setup("proc f(p, q, r) { out y = p * q + r; }");
        let k1 = block_key(&f1, f1.entry(), &lib, &sel1, &alloc, 25.0);
        let k2 = block_key(&f2, f2.entry(), &lib, &sel2, &alloc, 25.0);
        assert_eq!(k1, k2);
        let s1 = schedule_block(&f1, f1.entry(), &lib, &sel1, &alloc, 25.0).unwrap();
        let s2 = schedule_block(&f2, f2.entry(), &lib, &sel2, &alloc, 25.0).unwrap();
        assert_eq!(s1.states.len(), s2.states.len());
    }

    #[test]
    fn errors_are_memoized_and_remapped() {
        let f = compile("proc f(a) { out y = a + a; }").unwrap();
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let add = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let rules = SelectionRules {
            add: Some(add),
            ..Default::default()
        };
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        let alloc = Allocation::new(); // zero adders
        let memo = ScheduleMemo::default();
        let (e1, hit1) = memo.schedule_block_memoized(&f, f.entry(), &lib, &sel, &alloc, 25.0);
        let (e2, hit2) = memo.schedule_block_memoized(&f, f.entry(), &lib, &sel, &alloc, 25.0);
        assert!(!hit1);
        assert!(hit2);
        let fresh = schedule_block(&f, f.entry(), &lib, &sel, &alloc, 25.0);
        assert_eq!(e1.unwrap_err(), fresh.clone().unwrap_err());
        assert_eq!(e2.unwrap_err(), fresh.unwrap_err());
    }

    #[test]
    fn opid_rank_permutation_is_part_of_the_key() {
        // Two functions computing a+b twice with operations emitted in
        // different arena orders produce different rank permutations; the
        // key must distinguish them (priority ties break on OpId order).
        let mut f1 = Function::new("p1");
        let e1 = f1.entry();
        let a = f1.emit_input(e1, "a");
        let b = f1.emit_input(e1, "b");
        let x = f1.emit_bin(e1, BinOp::Add, a, b);
        let y = f1.emit_bin(e1, BinOp::Add, b, a);
        f1.emit_output(e1, "x", x);
        f1.emit_output(e1, "y", y);

        // Same block structure but the two adds' block positions are
        // swapped relative to their arena ids.
        let mut f2 = Function::new("p2");
        let e2 = f2.entry();
        let a2 = f2.emit_input(e2, "a");
        let b2 = f2.emit_input(e2, "b");
        let y2 = f2.emit_detached(fact_ir::Op::new(OpKind::Bin(BinOp::Add, b2, a2)));
        let x2 = f2.emit_bin(e2, BinOp::Add, a2, b2);
        // Manually place the detached op *before* x2's successor position.
        let posn = f2.position_in_block(e2, x2).unwrap();
        f2.block_mut(e2).ops.insert(posn + 1, y2);
        f2.emit_output(e2, "x", x2);
        f2.emit_output(e2, "y", y2);

        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let add = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let rules = SelectionRules {
            add: Some(add),
            ..Default::default()
        };
        let sel1 = FuSelection::from_rules(&f1, &rules).unwrap();
        let sel2 = FuSelection::from_rules(&f2, &rules).unwrap();
        let mut alloc = Allocation::new();
        alloc.set(add, 1);
        let k1 = block_key(&f1, e1, &lib, &sel1, &alloc, 25.0);
        let k2 = block_key(&f2, e2, &lib, &sel2, &alloc, 25.0);
        // f1: adds at block positions 2,3 have ranks in id order; f2's
        // second block-position add has the *smaller* raw id.
        assert_ne!(k1, k2, "rank permutation must feed the key");
    }
}
