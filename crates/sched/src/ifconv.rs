//! If-conversion: folding side-effect-free branch diamonds into straight
//! line code with muxes.
//!
//! The paper's scheduler "performs … functional pipelining (even across
//! **if** constructs)" (§5). Pipelining across an `if` requires speculating
//! both arms; we realize that by converting diamonds whose arms have no
//! side effects into mux-selected straight-line code. The transformed
//! behavior is observationally equivalent (both arms are total functions in
//! this IR — even division is total), and the energy accounting honestly
//! charges both arms, which is exactly what speculation costs in hardware.

use fact_ir::rewrite::{eliminate_dead_code, replace_all_uses};
use fact_ir::{BlockId, Function, OpKind, Terminator};
use std::collections::HashMap;

/// Result of if-conversion.
#[derive(Clone, Debug, Default)]
pub struct IfConvReport {
    /// Number of diamonds converted.
    pub converted: usize,
    /// For every block whose terminator moved during merging, the original
    /// block that owned it. Used to remap branch-probability profiles.
    pub branch_moved_from: HashMap<BlockId, BlockId>,
}

fn block_has_side_effects(f: &Function, b: BlockId) -> bool {
    f.block(b)
        .ops
        .iter()
        .any(|&op| f.op(op).kind.has_side_effect())
}

fn single_pred(preds: &[Vec<BlockId>], b: BlockId) -> Option<BlockId> {
    match preds[b.index()].as_slice() {
        [p] => Some(*p),
        _ => None,
    }
}

/// Converts every side-effect-free diamond and triangle in `f` to
/// straight-line mux code, iterating to a fixed point.
///
/// Handled shapes (`D` ends in `Branch{cond, T, E}`):
/// * **diamond**: `T` and `E` are distinct single-pred blocks that both
///   jump to a common merge `M`;
/// * **triangle**: one arm is the merge itself (`if` without `else`).
///
/// Arms must contain no stores or outputs. The merge block is folded into
/// `D`; its phis become muxes on `cond`.
pub fn if_convert(f: &mut Function) -> IfConvReport {
    let mut report = IfConvReport::default();
    loop {
        if !convert_one(f, &mut report) {
            break;
        }
    }
    if report.converted > 0 {
        eliminate_dead_code(f);
    }
    report
}

fn convert_one(f: &mut Function, report: &mut IfConvReport) -> bool {
    let preds = f.predecessors();
    for d in f.block_ids().collect::<Vec<_>>() {
        let (cond, on_true, on_false) = match f.block(d).term {
            Terminator::Branch {
                cond,
                on_true,
                on_false,
            } => (cond, on_true, on_false),
            _ => continue,
        };
        if on_true == on_false {
            continue;
        }

        // Identify the shape: (then-arm, else-arm, merge), where an arm of
        // `None` means the branch goes straight to the merge.
        let arm = |b: BlockId, merge_candidate: BlockId| -> Option<BlockId> {
            // b is a proper arm if it is a single-pred, single-succ block
            // jumping to the merge candidate.
            if b == merge_candidate {
                return None;
            }
            Some(b)
        };

        // Try diamond: both arms jump to same merge.
        let succ_of = |b: BlockId| -> Option<BlockId> {
            match f.block(b).term {
                Terminator::Jump(t) => Some(t),
                _ => None,
            }
        };

        let (t_arm, e_arm, merge) = {
            let ts = succ_of(on_true);
            let es = succ_of(on_false);
            if let (Some(tm), Some(em)) = (ts, es) {
                if tm == em
                    && single_pred(&preds, on_true) == Some(d)
                    && single_pred(&preds, on_false) == Some(d)
                {
                    (arm(on_true, tm), arm(on_false, tm), tm)
                } else if tm == on_false && single_pred(&preds, on_true) == Some(d) {
                    // triangle: true arm falls into on_false (merge)
                    (Some(on_true), None, on_false)
                } else if em == on_true && single_pred(&preds, on_false) == Some(d) {
                    (None, Some(on_false), on_true)
                } else {
                    continue;
                }
            } else if ts == Some(on_false) && single_pred(&preds, on_true) == Some(d) {
                (Some(on_true), None, on_false)
            } else if es == Some(on_true) && single_pred(&preds, on_false) == Some(d) {
                (None, Some(on_false), on_true)
            } else {
                continue;
            }
        };

        // Merge must be reached only through this diamond.
        let expected_preds: Vec<BlockId> = [t_arm.unwrap_or(d), e_arm.unwrap_or(d)].to_vec();
        let mut mp = preds[merge.index()].clone();
        mp.sort();
        let mut ep = expected_preds.clone();
        ep.sort();
        ep.dedup();
        mp.dedup();
        if mp != ep {
            continue;
        }
        // Arms must be effect-free and phi-free.
        let arm_ok = |b: Option<BlockId>| match b {
            None => true,
            Some(b) => {
                !block_has_side_effects(f, b)
                    && !f
                        .block(b)
                        .ops
                        .iter()
                        .any(|&op| matches!(f.op(op).kind, OpKind::Phi(_)))
            }
        };
        if !arm_ok(t_arm) || !arm_ok(e_arm) {
            continue;
        }

        // Perform the conversion: append arm ops to d.
        for armb in [t_arm, e_arm].into_iter().flatten() {
            let ops = std::mem::take(&mut f.block_mut(armb).ops);
            f.block_mut(d).ops.extend(ops);
            f.set_terminator(armb, Terminator::Return(None));
        }

        // Rewrite merge phis into muxes appended to d.
        let t_pred = t_arm.unwrap_or(d);
        let e_pred = e_arm.unwrap_or(d);
        let merge_ops = f.block(merge).ops.clone();
        for op in merge_ops {
            if let OpKind::Phi(incoming) = f.op(op).kind.clone() {
                let vt = incoming
                    .iter()
                    .find(|(b, _)| *b == t_pred)
                    .map(|(_, v)| *v)
                    .expect("phi covers then-arm");
                let ve = incoming
                    .iter()
                    .find(|(b, _)| *b == e_pred)
                    .map(|(_, v)| *v)
                    .expect("phi covers else-arm");
                let mux = f.emit_mux(d, cond, vt, ve);
                replace_all_uses(f, op, mux);
                f.block_mut(merge).ops.retain(|&o| o != op);
            }
        }
        // Fold the merge block's remaining ops and terminator into d.
        let rest = std::mem::take(&mut f.block_mut(merge).ops);
        f.block_mut(d).ops.extend(rest);
        let mterm = f.block(merge).term.clone();
        if matches!(mterm, Terminator::Branch { .. }) {
            // Track the branch's original owner for profile remapping:
            // if merge's branch itself had been moved, chase to the root.
            let origin = report.branch_moved_from.remove(&merge).unwrap_or(merge);
            report.branch_moved_from.insert(d, origin);
        }
        f.set_terminator(d, mterm);
        f.set_terminator(merge, Terminator::Return(None));

        // Phis in merge's successors referenced `merge` as pred; now `d`.
        for succ in f.block(d).term.successors() {
            let ops = f.block(succ).ops.clone();
            for op in ops {
                if let OpKind::Phi(incoming) = &mut f.op_mut(op).kind {
                    for (p, _) in incoming.iter_mut() {
                        if *p == merge {
                            *p = d;
                        }
                    }
                }
            }
        }

        report.converted += 1;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ir::verify::verify;
    use fact_lang::compile;
    use fact_sim::{check_equivalence, generate, InputSpec};

    fn traces(names: &[&str]) -> fact_sim::TraceSet {
        let specs: Vec<_> = names
            .iter()
            .map(|n| (n.to_string(), InputSpec::Uniform { lo: -40, hi: 40 }))
            .collect();
        generate(&specs, 100, 21)
    }

    #[test]
    fn converts_full_diamond() {
        let src =
            "proc f(a) { var y = 0; if (a > 0) { y = a + 1; } else { y = a - 1; } out y = y; }";
        let orig = compile(src).unwrap();
        let mut f = orig.clone();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 1);
        verify(&f).unwrap();
        assert_eq!(f.op_histogram().get("phi"), None);
        assert_eq!(f.op_histogram().get("mux"), Some(&1));
        check_equivalence(&orig, &f, &traces(&["a"]), 1).unwrap();
    }

    #[test]
    fn converts_triangle() {
        let src = "proc f(a) { var y = 5; if (a > 0) { y = a * 2; } out y = y; }";
        let orig = compile(src).unwrap();
        let mut f = orig.clone();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 1);
        verify(&f).unwrap();
        check_equivalence(&orig, &f, &traces(&["a"]), 2).unwrap();
    }

    #[test]
    fn refuses_arms_with_stores() {
        let src = "proc f(a) { array x[4]; if (a > 0) { x[0] = a; } out y = a; }";
        let mut f = compile(src).unwrap();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 0);
    }

    #[test]
    fn converts_gcd_body_inside_loop() {
        let src = r#"
            proc gcd(a, b) {
                while (a != b) {
                    if (a > b) { a = a - b; } else { b = b - a; }
                }
                out g = a;
            }
        "#;
        let orig = compile(src).unwrap();
        let mut f = orig.clone();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 1);
        verify(&f).unwrap();
        // The loop persists but its body is now branch-free.
        let dom = fact_ir::DomTree::compute(&f);
        let loops = fact_ir::LoopForest::compute(&f, &dom);
        assert_eq!(loops.loops().len(), 1);
        let l = &loops.loops()[0];
        // Loop body contains no conditional branch except the header test.
        let internal_branches = l
            .body
            .iter()
            .filter(|&&b| b != l.header)
            .filter(|&&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .count();
        assert_eq!(internal_branches, 0);
        // Equivalent on positive inputs (GCD domain).
        let specs = vec![
            ("a".to_string(), InputSpec::Uniform { lo: 1, hi: 60 }),
            ("b".to_string(), InputSpec::Uniform { lo: 1, hi: 60 }),
        ];
        let t = generate(&specs, 60, 5);
        check_equivalence(&orig, &f, &t, 3).unwrap();
    }

    #[test]
    fn nested_diamonds_convert_to_fixed_point() {
        let src = r#"
            proc f(a, b) {
                var y = 0;
                if (a > 0) {
                    if (b > 0) { y = 1; } else { y = 2; }
                } else {
                    y = 3;
                }
                out y = y;
            }
        "#;
        let orig = compile(src).unwrap();
        let mut f = orig.clone();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 2);
        verify(&f).unwrap();
        check_equivalence(&orig, &f, &traces(&["a", "b"]), 4).unwrap();
    }

    #[test]
    fn branch_move_is_tracked_for_profiles() {
        // After converting the inner diamond, the merge's branch (the
        // loop back-test) moves; the report must record where it came from.
        let src = r#"
            proc f(a, n) {
                var i = 0;
                var y = 0;
                while (i < n) {
                    if (a > 0) { y = y + 1; } else { y = y - 1; }
                    i = i + 1;
                }
                out y = y;
            }
        "#;
        let orig = compile(src).unwrap();
        let mut f = orig.clone();
        let r = if_convert(&mut f);
        assert_eq!(r.converted, 1);
        verify(&f).unwrap();
        let specs = vec![
            ("a".to_string(), InputSpec::Uniform { lo: -5, hi: 5 }),
            ("n".to_string(), InputSpec::Uniform { lo: 0, hi: 10 }),
        ];
        check_equivalence(&orig, &f, &generate(&specs, 60, 6), 5).unwrap();
    }
}
