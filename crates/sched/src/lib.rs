//! # fact-sched — a Wavesched-class scheduler for CFI behaviors
//!
//! Produces the paper's state transition graphs (§2.1, Figure 1(c)) from
//! SSA CDFGs under resource allocation and clock-period constraints.
//! Implements the scheduler capabilities §5 attributes to the in-house
//! tool \[13\]:
//!
//! * operator **chaining** under the clock period, with multi-cycle ops;
//! * **implicit loop unrolling** — next-iteration header operations folded
//!   into latch states ([`schedule::ScheduleReport::rotations`]);
//! * **functional pipelining** of loop kernels at their initiation
//!   interval, with if-conversion to pipeline across `if` constructs;
//! * **concurrent loop optimization** — independent loops execute in
//!   parallel phases sharing the datapath (Figure 2(b), Example 2).

#![warn(missing_docs)]

pub mod ifconv;
pub mod listsched;
pub mod memo;
pub mod parloops;
pub mod pipeline;
pub mod resources;
pub mod schedule;
pub mod stg;

pub use memo::ScheduleMemo;
pub use resources::{Allocation, FuId, FuLibrary, FuSelection, FuSpec, SelectionRules};
pub use schedule::{
    schedule, schedule_with_memo, SchedOptions, ScheduleError, ScheduleReport, ScheduleResult,
};
pub use stg::{ScheduledOp, State, StateId, Stg, Transition};
