//! The high-level power model of §2.2 (extending Chandrakasan et al. \[5\]
//! to CFI designs).
//!
//! Average power = average energy per execution / average execution time.
//! Energy is accumulated per state, weighted by expected visits: each
//! functional-unit operation contributes `C_type · Vdd²`, each register
//! access `C_reg · Vdd²`, each memory access `C_mem · Vdd²`. Interconnect
//! and controller are accounted as a fixed overhead fraction of the
//! datapath/storage subtotal, as the paper does ("after accounting for the
//! contribution due to the interconnect and controller").

use crate::markov::MarkovAnalysis;
use fact_ir::{Function, OpKind};
use fact_sched::{FuLibrary, FuSelection, Stg};
use std::collections::BTreeMap;

/// Fraction of datapath+storage energy added for interconnect+controller.
pub const OVERHEAD_FRACTION: f64 = 0.15;

/// Energy breakdown of one design point, in units of `Vdd²` (the paper's
/// Table 1 convention: coefficients are `E/Vdd²`).
#[derive(Clone, Debug, Default)]
pub struct EnergyBreakdown {
    /// Energy per FU type name. Ordered map: [`EnergyBreakdown::total`]
    /// sums these floats, and the summation order must not depend on
    /// hash-map iteration order for estimates to be bit-reproducible.
    pub per_fu: BTreeMap<String, f64>,
    /// Register-file access energy.
    pub registers: f64,
    /// Memory access energy.
    pub memories: f64,
    /// Interconnect + controller overhead.
    pub overhead: f64,
}

impl EnergyBreakdown {
    /// Total energy per execution, in `Vdd²` units.
    pub fn total(&self) -> f64 {
        self.per_fu.values().sum::<f64>() + self.registers + self.memories + self.overhead
    }
}

/// Computes the expected energy per execution of the behavior, in `Vdd²`
/// units.
///
/// Expected operation counts come from the Markov expected visits and the
/// per-state op weights (`E[executions of op] = Σ_states visits · weight`),
/// exactly the computation of the paper's Example 1: "the number of operations
/// executed by functional units of type *incr1* is given by
/// `119.11 × (P_S1·1 + P_S5·1)`".
///
/// Register accounting: every scheduled operation reads its operands from
/// registers and writes one result (loads write their result; stores write
/// none). Phi/mux steering and constant wiring are folded into the
/// overhead fraction.
pub fn energy_per_execution(
    stg: &Stg,
    markov: &MarkovAnalysis,
    f: &Function,
    selection: &FuSelection,
    library: &FuLibrary,
) -> EnergyBreakdown {
    let mut out = EnergyBreakdown::default();
    for s in stg.state_ids() {
        let visits = markov.visits(s);
        if visits <= 0.0 {
            continue;
        }
        for sop in &stg.state(s).ops {
            let times = visits * sop.weight;
            let kind = &f.op(sop.op).kind;
            match kind {
                OpKind::Load { .. } => {
                    out.memories += times * library.memory_energy_coeff;
                    // Result register write + address register read.
                    out.registers += times * 2.0 * library.register_energy_coeff;
                }
                OpKind::Store { .. } => {
                    out.memories += times * library.memory_energy_coeff;
                    // Address + data register reads.
                    out.registers += times * 2.0 * library.register_energy_coeff;
                }
                _ => {
                    if let Some(fu) = selection.fu_of(sop.op) {
                        let spec = library.spec(fu);
                        *out.per_fu.entry(spec.name.clone()).or_insert(0.0) +=
                            times * spec.energy_coeff;
                        let reads = kind.operands().len() as f64;
                        out.registers += times * (reads + 1.0) * library.register_energy_coeff;
                    }
                }
            }
        }
    }
    out.overhead =
        (out.per_fu.values().sum::<f64>() + out.registers + out.memories) * OVERHEAD_FRACTION;
    out
}

/// A complete power/performance estimate of one scheduled design.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Expected cycles per execution.
    pub average_schedule_length: f64,
    /// Energy per execution in `Vdd²` units.
    pub energy_vdd2: f64,
    /// Energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Supply voltage used.
    pub vdd: f64,
    /// Clock period at the reference voltage, ns.
    pub clock_ns: f64,
    /// Average power in consistent units (see [`Estimate::power`]).
    pub power: f64,
    /// Throughput in the paper's unit: `cycles⁻¹ × 1000`.
    pub throughput: f64,
}

/// Produces the estimate at a given supply voltage.
///
/// Power is `E·Vdd² / (L·T_clk(Vdd))` where the clock period stretches
/// with the voltage-dependent delay factor `Vdd/(Vdd−Vt)²` normalized to
/// the reference voltage (see [`crate::vdd`]).
pub fn estimate(
    stg: &Stg,
    markov: &MarkovAnalysis,
    f: &Function,
    selection: &FuSelection,
    library: &FuLibrary,
    clock_ns: f64,
    vdd: f64,
) -> Estimate {
    let breakdown = energy_per_execution(stg, markov, f, selection, library);
    let energy = breakdown.total();
    let len = markov.average_schedule_length;
    let delay_stretch =
        crate::vdd::delay_factor(vdd) / crate::vdd::delay_factor(crate::vdd::VDD_REF);
    let time_ns = len * clock_ns * delay_stretch;
    let power = if time_ns > 0.0 {
        energy * vdd * vdd / time_ns
    } else {
        0.0
    };
    Estimate {
        average_schedule_length: len,
        energy_vdd2: energy,
        breakdown,
        vdd,
        clock_ns,
        power,
        throughput: if len > 0.0 { 1000.0 / len } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::analyze;
    use fact_sched::{FuSpec, ScheduledOp, SelectionRules};

    fn setup() -> (
        Function,
        FuLibrary,
        FuSelection,
        fact_ir::OpId,
        fact_ir::OpId,
    ) {
        let mut f = Function::new("t");
        let e = f.entry();
        let a = f.emit_input(e, "a");
        let add = f.emit_bin(e, fact_ir::BinOp::Add, a, a);
        let m = f.add_memory("x", 8);
        let st = f.emit_store(e, m, a, add);
        let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
        let adder = lib.add(FuSpec {
            name: "a1".into(),
            energy_coeff: 1.3,
            delay_ns: 10.0,
            area: 1.5,
        });
        let rules = SelectionRules {
            add: Some(adder),
            ..Default::default()
        };
        let sel = FuSelection::from_rules(&f, &rules).unwrap();
        (f, lib, sel, add, st)
    }

    fn one_state_stg(ops: Vec<ScheduledOp>) -> Stg {
        let mut stg = Stg::new();
        let s = stg.add_state("s");
        stg.set_entry(s);
        stg.state_mut(s).ops = ops;
        let done = stg.done();
        stg.add_transition(s, done, 1.0, "");
        stg
    }

    #[test]
    fn energy_counts_fu_registers_memory_overhead() {
        let (f, lib, sel, add, st) = setup();
        let stg = one_state_stg(vec![ScheduledOp::once(add), ScheduledOp::once(st)]);
        let m = analyze(&stg).unwrap();
        let e = energy_per_execution(&stg, &m, &f, &sel, &lib);
        // Adder: 1.3. Registers: add = (2 reads + 1 write)·0.3 = 0.9;
        // store = 2 reads·0.3 = 0.6. Memory: 1.9.
        assert!((e.per_fu["a1"] - 1.3).abs() < 1e-9);
        assert!((e.registers - 1.5).abs() < 1e-9);
        assert!((e.memories - 1.9).abs() < 1e-9);
        let subtotal = 1.3 + 1.5 + 1.9;
        assert!((e.overhead - subtotal * OVERHEAD_FRACTION).abs() < 1e-9);
        assert!((e.total() - subtotal * (1.0 + OVERHEAD_FRACTION)).abs() < 1e-9);
    }

    #[test]
    fn weights_scale_energy() {
        let (f, lib, sel, add, _) = setup();
        let mut sop = ScheduledOp::once(add);
        sop.weight = 0.5;
        let stg = one_state_stg(vec![sop]);
        let m = analyze(&stg).unwrap();
        let e = energy_per_execution(&stg, &m, &f, &sel, &lib);
        assert!((e.per_fu["a1"] - 0.65).abs() < 1e-9);
    }

    #[test]
    fn visits_scale_energy() {
        // Self-looping state visited 4 times on average.
        let (f, lib, sel, add, _) = setup();
        let mut stg = Stg::new();
        let s = stg.add_state("s");
        stg.set_entry(s);
        stg.state_mut(s).ops = vec![ScheduledOp::once(add)];
        stg.add_transition(s, s, 0.75, "");
        let done = stg.done();
        stg.add_transition(s, done, 0.25, "");
        let m = analyze(&stg).unwrap();
        let e = energy_per_execution(&stg, &m, &f, &sel, &lib);
        assert!((e.per_fu["a1"] - 4.0 * 1.3).abs() < 1e-9);
    }

    #[test]
    fn estimate_power_scales_with_vdd_squared_at_ref_clock() {
        let (f, lib, sel, add, _) = setup();
        let stg = one_state_stg(vec![ScheduledOp::once(add)]);
        let m = analyze(&stg).unwrap();
        let e5 = estimate(&stg, &m, &f, &sel, &lib, 25.0, 5.0);
        assert!(e5.power > 0.0);
        assert!((e5.throughput - 1000.0).abs() < 1e-9);
        // Lower voltage, same schedule: less power despite slower clock
        // only if quadratic savings beat the linear slowdown — at 4V vs 5V
        // the delay factor grows ~39% while energy drops 36%; check the
        // exact formula rather than the inequality.
        let e4 = estimate(&stg, &m, &f, &sel, &lib, 25.0, 4.0);
        let stretch = crate::vdd::delay_factor(4.0) / crate::vdd::delay_factor(5.0);
        let expected = e5.power * (16.0 / 25.0) / stretch;
        assert!((e4.power - expected).abs() < 1e-9);
    }
}
