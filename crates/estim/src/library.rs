//! The paper's functional-unit libraries.
//!
//! * [`table1_library`] — Table 1 of §2.2 (used in the power-estimation
//!   walkthrough of Example 1): `comp1`, `cla1`, `incr1`, `w_mult1`,
//!   `reg1`, `mem1`, with `E/Vdd²`, delay, and area exactly as printed.
//! * [`section5_library`] — the experimental library of §5: adder `a1`
//!   (10ns), subtracter `sb1` (10ns), multiplier `mt1` (23ns), less-than
//!   comparator `cp1` (10ns), equality comparator `e1` (5ns), incrementer
//!   `i1` (5ns), multi-bit inverter `n1` (2ns), shifter `s1` (10ns).
//!   §5 does not print energy coefficients for these units; we assign them
//!   from the Table 1 units of the same class (documented in DESIGN.md).

use fact_sched::{FuLibrary, FuSpec, SelectionRules};

/// Builds the Table 1 library and matching selection rules.
///
/// Units: `comp1` (cmp, E/Vdd²=1.1, 12ns), `cla1` (add/sub, 1.3, 10ns),
/// `incr1` (increment, 0.7, 13ns), `w_mult1` (multiply, 2.3, 23ns);
/// registers `reg1` (0.3, 3ns) and memory `mem1` (1.9, 15ns).
pub fn table1_library() -> (FuLibrary, SelectionRules) {
    let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
    let comp1 = lib.add(FuSpec {
        name: "comp1".into(),
        energy_coeff: 1.1,
        delay_ns: 12.0,
        area: 1.3,
    });
    let cla1 = lib.add(FuSpec {
        name: "cla1".into(),
        energy_coeff: 1.3,
        delay_ns: 10.0,
        area: 1.5,
    });
    let incr1 = lib.add(FuSpec {
        name: "incr1".into(),
        energy_coeff: 0.7,
        delay_ns: 13.0,
        area: 1.1,
    });
    let w_mult1 = lib.add(FuSpec {
        name: "w_mult1".into(),
        energy_coeff: 2.3,
        delay_ns: 23.0,
        area: 3.9,
    });
    let rules = SelectionRules {
        add: Some(cla1),
        sub: Some(cla1),
        mul: Some(w_mult1),
        cmp: Some(comp1),
        eq: Some(comp1),
        incr: Some(incr1),
        ..Default::default()
    };
    (lib, rules)
}

/// Builds the §5 experimental library and matching selection rules.
///
/// Delays are the paper's; energy coefficients are taken from the Table 1
/// unit of the same class, scaled by delay where no counterpart exists.
pub fn section5_library() -> (FuLibrary, SelectionRules) {
    let mut lib = FuLibrary::new(0.3, 3.0, 1.9, 15.0);
    let a1 = lib.add(FuSpec {
        name: "a1".into(),
        energy_coeff: 1.3,
        delay_ns: 10.0,
        area: 1.5,
    });
    let sb1 = lib.add(FuSpec {
        name: "sb1".into(),
        energy_coeff: 1.3,
        delay_ns: 10.0,
        area: 1.5,
    });
    let mt1 = lib.add(FuSpec {
        name: "mt1".into(),
        energy_coeff: 2.3,
        delay_ns: 23.0,
        area: 3.9,
    });
    let cp1 = lib.add(FuSpec {
        name: "cp1".into(),
        energy_coeff: 1.1,
        delay_ns: 10.0,
        area: 1.3,
    });
    let e1 = lib.add(FuSpec {
        name: "e1".into(),
        energy_coeff: 0.6,
        delay_ns: 5.0,
        area: 0.8,
    });
    let i1 = lib.add(FuSpec {
        name: "i1".into(),
        energy_coeff: 0.7,
        delay_ns: 5.0,
        area: 1.1,
    });
    let n1 = lib.add(FuSpec {
        name: "n1".into(),
        energy_coeff: 0.2,
        delay_ns: 2.0,
        area: 0.4,
    });
    let s1 = lib.add(FuSpec {
        name: "s1".into(),
        energy_coeff: 0.9,
        delay_ns: 10.0,
        area: 1.2,
    });
    let rules = SelectionRules {
        add: Some(a1),
        sub: Some(sb1),
        mul: Some(mt1),
        cmp: Some(cp1),
        eq: Some(e1),
        incr: Some(i1),
        shift: Some(s1),
        logic: Some(n1),
        ..Default::default()
    };
    (lib, rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let (lib, rules) = table1_library();
        let comp = lib.by_name("comp1").unwrap();
        assert_eq!(lib.spec(comp).energy_coeff, 1.1);
        assert_eq!(lib.spec(comp).delay_ns, 12.0);
        assert_eq!(lib.spec(comp).area, 1.3);
        let incr = lib.by_name("incr1").unwrap();
        assert_eq!(lib.spec(incr).delay_ns, 13.0);
        assert_eq!(lib.register_energy_coeff, 0.3);
        assert_eq!(lib.memory_energy_coeff, 1.9);
        assert_eq!(rules.mul, lib.by_name("w_mult1"));
    }

    #[test]
    fn section5_delays_match_paper() {
        let (lib, rules) = section5_library();
        for (name, d) in [
            ("a1", 10.0),
            ("sb1", 10.0),
            ("mt1", 23.0),
            ("cp1", 10.0),
            ("e1", 5.0),
            ("i1", 5.0),
            ("n1", 2.0),
            ("s1", 10.0),
        ] {
            let id = lib.by_name(name).unwrap();
            assert_eq!(lib.spec(id).delay_ns, d, "{name}");
        }
        assert!(rules.shift.is_some());
        assert!(rules.logic.is_some());
    }

    #[test]
    fn incrementer_chains_with_comparator_in_25ns_table1() {
        // Table 1: incr1 13ns + comp1 12ns = 25ns — the Figure 1(c) chain.
        let (lib, _) = table1_library();
        let i = lib.spec(lib.by_name("incr1").unwrap()).delay_ns;
        let c = lib.spec(lib.by_name("comp1").unwrap()).delay_ns;
        assert!(i + c <= 25.0);
    }
}
