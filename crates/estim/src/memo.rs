//! Memoized Markov analysis for incremental candidate evaluation.
//!
//! During the transformation search, candidates that differ only in
//! untouched partitions produce STGs whose transition structure (and
//! empirical visit annotations) repeat across evaluations. The analysis is
//! a pure function of exactly that structure, so [`MarkovMemo`] caches
//! [`analyze_preferring_empirical`] results keyed by a structural hash of
//! everything the solver reads: state count, entry/done ids, per-state
//! empirical visit annotations, and every transition's `(from, to, prob)`
//! triple. Hits return a clone of the stored [`MarkovAnalysis`] —
//! bit-identical to a fresh solve.

use crate::markov::{analyze_preferring_empirical, MarkovAnalysis};
use fact_sched::Stg;
use std::collections::HashMap;
use std::sync::Mutex;

/// A shared, thread-safe cache of Markov analyses keyed by STG structure.
pub struct MarkovMemo {
    shards: Vec<Mutex<HashMap<u64, Result<MarkovAnalysis, String>>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Default for MarkovMemo {
    fn default() -> Self {
        MarkovMemo::with_shards(16)
    }
}

impl MarkovMemo {
    /// Creates a memo with the given shard count (rounded up to 1).
    pub fn with_shards(n: usize) -> Self {
        MarkovMemo {
            shards: (0..n.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` over the memo's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of cached analyses.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`analyze_preferring_empirical`] through the memo.
    ///
    /// # Errors
    /// Same as [`analyze_preferring_empirical`] (memoized errors included).
    pub fn analyze_memoized(&self, stg: &Stg) -> Result<MarkovAnalysis, String> {
        let key = stg_key(stg);
        let shard = &self.shards[(key as usize) % self.shards.len()];
        if let Some(cached) = shard.lock().ok().and_then(|g| g.get(&key).cloned()) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return cached;
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let fresh = analyze_preferring_empirical(stg);
        if let Ok(mut guard) = shard.lock() {
            guard.insert(key, fresh.clone());
        }
        fresh
    }
}

/// Hashes the STG fields the Markov solver reads: state count, entry and
/// done ids, empirical visit annotations, and transition triples in order.
/// State names, labels, and scheduled ops are display/energy concerns and
/// deliberately excluded.
fn stg_key(stg: &Stg) -> u64 {
    let mut h = 0x4D41_524B_0565_7374u64; // arbitrary seed
    let mut mix = |v: u64| {
        let mut z = h.rotate_left(7) ^ v;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    };
    mix(stg.num_states() as u64);
    mix(stg.entry().index() as u64);
    mix(stg.done().index() as u64);
    for s in stg.state_ids() {
        match stg.state(s).expected_visits {
            Some(v) => mix(v.to_bits()),
            None => mix(1),
        }
    }
    for t in stg.transitions() {
        mix(t.from.index() as u64);
        mix(t.to.index() as u64);
        mix(t.prob.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stg(q: f64) -> Stg {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, a, q, "loop");
        stg.add_transition(a, b, 1.0 - q, "");
        let done = stg.done();
        stg.add_transition(b, done, 1.0, "");
        stg
    }

    #[test]
    fn memoized_equals_fresh_and_hits_on_repeat() {
        let stg = sample_stg(0.9);
        let memo = MarkovMemo::default();
        let fresh = analyze_preferring_empirical(&stg).unwrap();
        let cold = memo.analyze_memoized(&stg).unwrap();
        let warm = memo.analyze_memoized(&stg).unwrap();
        for m in [&cold, &warm] {
            assert_eq!(m.expected_visits, fresh.expected_visits);
            assert_eq!(m.state_probs, fresh.state_probs);
            assert_eq!(m.average_schedule_length, fresh.average_schedule_length);
        }
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn different_probabilities_miss() {
        let memo = MarkovMemo::default();
        let a = memo.analyze_memoized(&sample_stg(0.9)).unwrap();
        let b = memo.analyze_memoized(&sample_stg(0.5)).unwrap();
        assert_eq!(memo.stats(), (0, 2));
        assert!(a.average_schedule_length > b.average_schedule_length);
    }

    #[test]
    fn empirical_annotations_feed_the_key() {
        let memo = MarkovMemo::default();
        let plain = sample_stg(0.9);
        let mut annotated = sample_stg(0.9);
        for s in annotated.state_ids().collect::<Vec<_>>() {
            if s != annotated.done() {
                annotated.state_mut(s).expected_visits = Some(3.0);
            }
        }
        let a = memo.analyze_memoized(&plain).unwrap();
        let b = memo.analyze_memoized(&annotated).unwrap();
        assert_eq!(memo.stats(), (0, 2), "annotations must change the key");
        assert_ne!(a.average_schedule_length, b.average_schedule_length);
    }

    #[test]
    fn errors_are_memoized() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, b, 1.0, "");
        stg.add_transition(b, a, 1.0, "");
        let memo = MarkovMemo::default();
        let e1 = memo.analyze_memoized(&stg);
        let e2 = memo.analyze_memoized(&stg);
        assert!(e1.is_err());
        assert_eq!(e1.err(), e2.err());
        assert_eq!(memo.stats(), (1, 1));
    }
}
