//! Markov analysis of the STG, following Bhattacharya, Dey and Brglez
//! (DAC 1994, the paper's reference \[10\]).
//!
//! The STG with profiled transition probabilities is an absorbing Markov
//! chain: the `done` state absorbs, every other state is transient. The
//! expected number of visits to each transient state gives (a) the
//! *average schedule length* — the expected number of cycles to complete
//! one execution of the behavior — and (b) the *state probabilities* used
//! to weight per-state energy (paper §2.2, Example 1).

use fact_sched::{StateId, Stg};

/// Result of the absorbing-chain analysis.
#[derive(Clone, Debug)]
pub struct MarkovAnalysis {
    /// Expected visits per state per execution (0 for `done`).
    pub expected_visits: Vec<f64>,
    /// Probability of being in each state, conditioned on not being done:
    /// `visits[s] / total_visits`.
    pub state_probs: Vec<f64>,
    /// Expected total cycles per execution (sum of visits).
    pub average_schedule_length: f64,
}

impl MarkovAnalysis {
    /// Expected visits to `s`.
    pub fn visits(&self, s: StateId) -> f64 {
        self.expected_visits[s.index()]
    }

    /// Steady-state probability of `s`.
    pub fn prob(&self, s: StateId) -> f64 {
        self.state_probs[s.index()]
    }
}

/// Analyzes `stg`, solving the expected-visits system
/// `v = e_entry + Qᵀ v` by dense Gaussian elimination (STGs in this domain
/// have tens of states).
///
/// # Errors
/// Returns an error if the linear system is singular — which happens
/// exactly when some probability mass can never reach `done` (a closed
/// cycle with no exit), a structurally invalid schedule.
pub fn analyze(stg: &Stg) -> Result<MarkovAnalysis, String> {
    let n = stg.num_states();
    let done = stg.done().index();

    // Build (I - Qᵀ) v = e, where Q[i][j] = P(i -> j) over transient
    // states. Row `done` is forced to v[done] = 0.
    let mut a = vec![vec![0.0f64; n]; n];
    let mut rhs = vec![0.0f64; n];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for t in stg.transitions() {
        let (i, j) = (t.from.index(), t.to.index());
        if j != done {
            a[j][i] -= t.prob;
        }
    }
    rhs[stg.entry().index()] += 1.0;
    // v[done] = 0.
    for x in a[done].iter_mut() {
        *x = 0.0;
    }
    a[done][done] = 1.0;
    rhs[done] = 0.0;

    let v = solve(&mut a, &mut rhs)?;
    let total: f64 = v.iter().sum();
    let probs: Vec<f64> = if total > 0.0 {
        v.iter().map(|&x| x / total).collect()
    } else {
        vec![0.0; n]
    };
    Ok(MarkovAnalysis {
        expected_visits: v,
        state_probs: probs,
        average_schedule_length: total,
    })
}

/// Analyzes `stg` preferring the scheduler's *empirical* expected-visit
/// annotations (profiled block-visit averages, exact by linearity of
/// expectation) when every state reachable from the entry carries one.
/// Otherwise falls back to the first-order Markov solution of [`analyze`].
///
/// The empirical counts make candidate comparisons immune to a known
/// first-order-Markov artifact: restructuring a loop (e.g. unrolling it)
/// changes the *order* of the chain and hence the estimate, without
/// changing the physical behavior.
///
/// # Errors
/// Propagates [`analyze`] failures when falling back.
pub fn analyze_preferring_empirical(stg: &Stg) -> Result<MarkovAnalysis, String> {
    // Reachable states from the entry.
    let n = stg.num_states();
    let mut reach = vec![false; n];
    let mut stack = vec![stg.entry()];
    reach[stg.entry().index()] = true;
    while let Some(s) = stack.pop() {
        for t in stg.outgoing(s) {
            if !reach[t.to.index()] {
                reach[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    let mut visits = vec![0.0f64; n];
    for s in stg.state_ids() {
        if s == stg.done() || !reach[s.index()] {
            continue;
        }
        match stg.state(s).expected_visits {
            Some(v) => visits[s.index()] = v,
            None => return analyze(stg),
        }
    }
    let total: f64 = visits.iter().sum();
    if total <= 0.0 {
        return analyze(stg);
    }
    let probs = visits.iter().map(|&v| v / total).collect();
    Ok(MarkovAnalysis {
        expected_visits: visits,
        state_probs: probs,
        average_schedule_length: total,
    })
}

/// Gaussian elimination with partial pivoting. Consumes its inputs.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, String> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut best = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[best][col].abs() {
                best = row;
            }
        }
        if a[best][col].abs() < 1e-12 {
            return Err(format!(
                "singular system at column {col}: a closed cycle never reaches done"
            ));
        }
        a.swap(col, best);
        b.swap(col, best);
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // a[row] and a[col] alias
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in row + 1..n {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_chain_visits_each_once() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, b, 1.0, "");
        let done = stg.done();
        stg.add_transition(b, done, 1.0, "");
        let m = analyze(&stg).unwrap();
        assert!((m.visits(a) - 1.0).abs() < 1e-9);
        assert!((m.visits(b) - 1.0).abs() < 1e-9);
        assert!((m.average_schedule_length - 2.0).abs() < 1e-9);
        assert!((m.prob(a) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn geometric_self_loop_has_expected_visits() {
        // Self-loop with q = 0.9: expected visits = 1 / (1-q) = 10.
        let mut stg = Stg::new();
        let k = stg.add_state("k");
        stg.set_entry(k);
        stg.add_transition(k, k, 0.9, "");
        let done = stg.done();
        stg.add_transition(k, done, 0.1, "");
        let m = analyze(&stg).unwrap();
        assert!((m.visits(k) - 10.0).abs() < 1e-9);
        assert!((m.average_schedule_length - 10.0).abs() < 1e-9);
    }

    #[test]
    fn branch_probabilities_weight_paths() {
        // entry -> (p=0.25: long 3-state path | p=0.75: 1-state path) -> done
        let mut stg = Stg::new();
        let e = stg.add_state("e");
        let l1 = stg.add_state("l1");
        let l2 = stg.add_state("l2");
        let l3 = stg.add_state("l3");
        let s1 = stg.add_state("s1");
        stg.set_entry(e);
        stg.add_transition(e, l1, 0.25, "");
        stg.add_transition(e, s1, 0.75, "");
        stg.add_transition(l1, l2, 1.0, "");
        stg.add_transition(l2, l3, 1.0, "");
        let done = stg.done();
        stg.add_transition(l3, done, 1.0, "");
        stg.add_transition(s1, done, 1.0, "");
        let m = analyze(&stg).unwrap();
        // E[len] = 1 + 0.25*3 + 0.75*1 = 2.5
        assert!((m.average_schedule_length - 2.5).abs() < 1e-9);
        assert!((m.visits(l2) - 0.25).abs() < 1e-9);
        assert!((m.visits(s1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn nested_loop_multiplies_visits() {
        // outer self-loops through an inner state: entry -> i; i -> i (0.5),
        // i -> o (0.5); o -> i (0.5), o -> done (0.5).
        let mut stg = Stg::new();
        let i = stg.add_state("i");
        let o = stg.add_state("o");
        stg.set_entry(i);
        stg.add_transition(i, i, 0.5, "");
        stg.add_transition(i, o, 0.5, "");
        stg.add_transition(o, i, 0.5, "");
        let done = stg.done();
        stg.add_transition(o, done, 0.5, "");
        let m = analyze(&stg).unwrap();
        // Solve by hand: v_i = 1 + 0.5 v_i + 0.5 v_o; v_o = 0.5 v_i.
        // => v_i = 1 + 0.5 v_i + 0.25 v_i => v_i = 4, v_o = 2.
        assert!((m.visits(i) - 4.0).abs() < 1e-9);
        assert!((m.visits(o) - 2.0).abs() < 1e-9);
        assert!((m.average_schedule_length - 6.0).abs() < 1e-9);
    }

    #[test]
    fn closed_cycle_is_singular() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, b, 1.0, "");
        stg.add_transition(b, a, 1.0, "");
        assert!(analyze(&stg).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut stg = Stg::new();
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(a);
        stg.add_transition(a, b, 0.7, "");
        let done = stg.done();
        stg.add_transition(a, done, 0.3, "");
        stg.add_transition(b, a, 1.0, "");
        let m = analyze(&stg).unwrap();
        let sum: f64 = m.state_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
