//! One-call evaluation of a scheduling result: Markov analysis + power
//! model + optional Vdd scaling. This is the estimator invoked in the
//! inner loop of the transformation search (paper Figure 5, step 6).

use crate::markov::{analyze_preferring_empirical, MarkovAnalysis};
use crate::memo::MarkovMemo;
use crate::power::{estimate, Estimate};
use crate::vdd::{scale_voltage, VDD_REF};
use fact_sched::{FuLibrary, ScheduleResult};

/// Runs the Markov analysis through an optional memo.
fn markov_via(sr: &ScheduleResult, memo: Option<&MarkovMemo>) -> Result<MarkovAnalysis, String> {
    match memo {
        Some(m) => m.analyze_memoized(&sr.stg),
        None => analyze_preferring_empirical(&sr.stg),
    }
}

/// Evaluates a schedule at the reference voltage.
///
/// # Errors
/// Propagates Markov-analysis failures (malformed STGs).
///
/// # Examples
///
/// ```
/// use fact_estim::{evaluate, section5_library};
/// use fact_sched::{schedule, Allocation, SchedOptions};
/// use fact_sim::BranchProfile;
///
/// let f = fact_lang::compile("proc f(a, b) { out y = a * b; }")?;
/// let (lib, rules) = section5_library();
/// let mut alloc = Allocation::new();
/// alloc.set(lib.by_name("mt1").unwrap(), 1);
/// let sr = schedule(
///     &f, &lib, &rules, &alloc, &BranchProfile::uniform(), &SchedOptions::default(),
/// )?;
/// let est = evaluate(&sr, &lib, 25.0)?;
/// assert!(est.average_schedule_length >= 1.0);
/// assert!(est.energy_vdd2 > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    sr: &ScheduleResult,
    library: &FuLibrary,
    clock_ns: f64,
) -> Result<Estimate, String> {
    evaluate_with_memo(sr, library, clock_ns, None)
}

/// [`evaluate`] with an optional Markov-analysis cache. Results are
/// bit-identical to [`evaluate`]; the memo only caches a pure function of
/// the STG structure (see [`crate::memo`]).
///
/// # Errors
/// Same as [`evaluate`].
pub fn evaluate_with_memo(
    sr: &ScheduleResult,
    library: &FuLibrary,
    clock_ns: f64,
    memo: Option<&MarkovMemo>,
) -> Result<Estimate, String> {
    let markov = markov_via(sr, memo)?;
    Ok(estimate(
        &sr.stg,
        &markov,
        &sr.function,
        &sr.selection,
        library,
        clock_ns,
        VDD_REF,
    ))
}

/// Evaluates a schedule in power-optimization mode: if the schedule beats
/// `base_cycles` (the untransformed design's average schedule length), the
/// supply voltage is scaled down until performance matches the baseline
/// and power is reported at the scaled voltage over the baseline time
/// (paper §2.2, Example 1).
///
/// # Errors
/// Propagates Markov-analysis failures.
pub fn evaluate_power_mode(
    sr: &ScheduleResult,
    library: &FuLibrary,
    clock_ns: f64,
    base_cycles: f64,
) -> Result<Estimate, String> {
    evaluate_power_mode_with_memo(sr, library, clock_ns, base_cycles, None)
}

/// [`evaluate_power_mode`] with an optional Markov-analysis cache.
///
/// # Errors
/// Same as [`evaluate_power_mode`].
pub fn evaluate_power_mode_with_memo(
    sr: &ScheduleResult,
    library: &FuLibrary,
    clock_ns: f64,
    base_cycles: f64,
    memo: Option<&MarkovMemo>,
) -> Result<Estimate, String> {
    let markov = markov_via(sr, memo)?;
    let vdd = scale_voltage(base_cycles, markov.average_schedule_length);
    let mut est = estimate(
        &sr.stg,
        &markov,
        &sr.function,
        &sr.selection,
        library,
        clock_ns,
        vdd,
    );
    // At the scaled voltage the design takes the baseline's time; report
    // power over that budget (never less than the design's own time).
    let time_ns = base_cycles.max(markov.average_schedule_length) * clock_ns;
    est.power = est.energy_vdd2 * vdd * vdd / time_ns;
    Ok(est)
}

/// Runs just the Markov analysis of a schedule.
///
/// # Errors
/// Propagates Markov-analysis failures.
pub fn markov_of(sr: &ScheduleResult) -> Result<MarkovAnalysis, String> {
    analyze_preferring_empirical(&sr.stg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{section5_library, table1_library};
    use fact_lang::compile;
    use fact_sched::{schedule, Allocation, SchedOptions};
    use fact_sim::{generate, profile, InputSpec};

    /// The paper's TEST1 (Figure 1(a)), with the branch probabilities of
    /// Example 1: while closes w.p. 0.98, if taken w.p. 0.37.
    fn test1_estimate(opts: &SchedOptions) -> (Estimate, f64) {
        let f = compile(
            r#"
            proc test1(c1, c2) {
                var i = 0;
                var a = 0;
                array x[128];
                while (c2 > i) {
                    if (i < c1) { a = 13 * (a + 7); } else { a = a + 17; }
                    i = i + 1;
                    x[i] = a;
                }
                out a = a;
            }
            "#,
        )
        .unwrap();
        let (lib, rules) = table1_library();
        let mut alloc = Allocation::new();
        alloc.set(lib.by_name("comp1").unwrap(), 2);
        alloc.set(lib.by_name("cla1").unwrap(), 2);
        alloc.set(lib.by_name("incr1").unwrap(), 1);
        alloc.set(lib.by_name("w_mult1").unwrap(), 1);
        // Traces chosen to hit the paper's probabilities: c2 = 49 (while
        // closes 49/50 = 0.98), c1 ≈ 0.37·c2.
        let traces = generate(
            &[
                ("c1".to_string(), InputSpec::Constant(18)),
                ("c2".to_string(), InputSpec::Constant(49)),
            ],
            4,
            7,
        );
        let prof = profile(&f, &traces);
        let sr = schedule(&f, &lib, &rules, &alloc, &prof, opts).unwrap();
        let est = evaluate(&sr, &lib, opts.clock_ns).unwrap();
        let m = markov_of(&sr).unwrap();
        (est, m.average_schedule_length)
    }

    #[test]
    fn test1_baseline_schedule_length_is_near_papers() {
        // The paper's Example 1 schedule averages 119.11 cycles for the
        // transformed design and 151.30 for the baseline. Our scheduler is
        // not Wavesched, so we check the magnitude (tens-to-hundreds of
        // cycles for ~49 iterations) and the qualitative ordering below.
        let baseline = SchedOptions {
            if_convert: false,
            rotate: false,
            pipeline: false,
            concurrent: false,
            ..Default::default()
        };
        let (est, len) = test1_estimate(&baseline);
        assert!(len > 50.0 && len < 400.0, "len {len}");
        assert!(est.energy_vdd2 > 0.0);
        assert!(est.power > 0.0);
    }

    #[test]
    fn scheduler_optimizations_shorten_test1() {
        let baseline = SchedOptions {
            if_convert: false,
            rotate: false,
            pipeline: false,
            concurrent: false,
            ..Default::default()
        };
        let full = SchedOptions::default();
        let (_, len_base) = test1_estimate(&baseline);
        let (_, len_full) = test1_estimate(&full);
        assert!(
            len_full < len_base,
            "full scheduler {len_full} should beat baseline {len_base}"
        );
    }

    #[test]
    fn power_mode_scales_voltage_for_faster_designs() {
        let full = SchedOptions::default();
        let baseline = SchedOptions {
            if_convert: false,
            rotate: false,
            pipeline: false,
            concurrent: false,
            ..Default::default()
        };
        let (_, len_base) = test1_estimate(&baseline);
        // Re-run the full schedule and evaluate in power mode against the
        // baseline length.
        let f = compile(
            "proc f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1; } out s = s; }",
        )
        .unwrap();
        let (lib, rules) = section5_library();
        let mut alloc = Allocation::new();
        alloc.set(lib.by_name("a1").unwrap(), 1);
        alloc.set(lib.by_name("i1").unwrap(), 1);
        alloc.set(lib.by_name("cp1").unwrap(), 1);
        let traces = generate(&[("n".to_string(), InputSpec::Constant(30))], 2, 3);
        let prof = profile(&f, &traces);
        let sr_full = schedule(&f, &lib, &rules, &alloc, &prof, &full).unwrap();
        let sr_base = schedule(&f, &lib, &rules, &alloc, &prof, &baseline).unwrap();
        let m_base = markov_of(&sr_base).unwrap();
        let est_ref = evaluate(&sr_full, &lib, 25.0).unwrap();
        let est_scaled =
            evaluate_power_mode(&sr_full, &lib, 25.0, m_base.average_schedule_length).unwrap();
        assert!(est_scaled.vdd < est_ref.vdd);
        assert!(est_scaled.power < est_ref.power);
        let _ = len_base;
    }
}
