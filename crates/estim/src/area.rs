//! Area estimation.
//!
//! Table 1 characterizes every component for area, and the paper's
//! introduction names compactness as a design goal alongside throughput
//! and power. Area here is allocation-driven (the datapath is built from
//! the allocated units regardless of utilization) plus storage: one
//! register per value that crosses a state boundary, and one memory block
//! per declared array.

use fact_sched::{Allocation, FuLibrary, ScheduleResult};
use std::collections::{HashMap, HashSet};

/// Area of one register (Table 1's `reg1`).
pub const REGISTER_AREA: f64 = 1.0;

/// Area of one memory block (Table 1's `mem1`).
pub const MEMORY_AREA: f64 = 8.1;

/// Area breakdown of a design point, in Table 1's relative units.
#[derive(Clone, Debug, Default)]
pub struct AreaReport {
    /// Allocated functional units.
    pub functional_units: f64,
    /// Registers holding values across state boundaries.
    pub registers: f64,
    /// Memory blocks.
    pub memories: f64,
    /// Number of registers counted.
    pub register_count: usize,
}

impl AreaReport {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.functional_units + self.registers + self.memories
    }
}

/// Estimates the area of a scheduled design.
///
/// Functional-unit area is `Σ count(u) · area(u)` over the allocation.
/// Register count is the number of scheduled operations whose value is
/// consumed in a different state than it is produced in (phis always
/// hold state and count once each).
pub fn estimate_area(sr: &ScheduleResult, library: &FuLibrary, alloc: &Allocation) -> AreaReport {
    let mut fu_area = 0.0;
    for (fu, count) in alloc.iter() {
        fu_area += count as f64 * library.spec(fu).area;
    }

    // State of each scheduled op (first state it appears in).
    let mut state_of: HashMap<fact_ir::OpId, fact_sched::StateId> = HashMap::new();
    for s in sr.stg.state_ids() {
        for sop in &sr.stg.state(s).ops {
            state_of.entry(sop.op).or_insert(s);
        }
    }
    // Values needing registers: produced in one state, consumed in another
    // (or consumed by an unscheduled free op — conservatively registered).
    let f = &sr.function;
    let mut registered: HashSet<fact_ir::OpId> = HashSet::new();
    for b in f.block_ids() {
        for &user in &f.block(b).ops {
            let user_state = state_of.get(&user);
            for v in f.op(user).kind.operands() {
                match (state_of.get(&v), user_state) {
                    (Some(ds), Some(us)) if ds != us => {
                        registered.insert(v);
                    }
                    (Some(_), None) | (None, _) => {
                        // Free producers/consumers (phis, constants, IO):
                        // phis hold loop state and always need a register.
                        if matches!(f.op(v).kind, fact_ir::OpKind::Phi(_)) {
                            registered.insert(v);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    AreaReport {
        functional_units: fu_area,
        registers: registered.len() as f64 * REGISTER_AREA,
        memories: f.memories().count() as f64 * MEMORY_AREA,
        register_count: registered.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::section5_library;
    use fact_lang::compile;
    use fact_sched::{schedule, SchedOptions};
    use fact_sim::{generate, profile, InputSpec};

    fn scheduled(src: &str, pairs: &[(&str, u32)]) -> (ScheduleResult, FuLibrary, Allocation) {
        let f = compile(src).unwrap();
        let (lib, rules) = section5_library();
        let mut alloc = Allocation::new();
        for (n, c) in pairs {
            alloc.set(lib.by_name(n).unwrap(), *c);
        }
        let specs: Vec<_> = f
            .inputs()
            .iter()
            .map(|(n, _)| (n.clone(), InputSpec::Uniform { lo: 1, hi: 20 }))
            .collect();
        let traces = generate(&specs, 5, 3);
        let prof = profile(&f, &traces);
        let sr = schedule(&f, &lib, &rules, &alloc, &prof, &SchedOptions::default()).unwrap();
        (sr, lib, alloc)
    }

    #[test]
    fn fu_area_follows_allocation() {
        let (sr, lib, alloc) = scheduled(
            "proc f(a, b) { out y = a * b + a; }",
            &[("a1", 2), ("mt1", 1)],
        );
        let r = estimate_area(&sr, &lib, &alloc);
        // 2 adders x 1.5 + 1 multiplier x 3.9.
        assert!((r.functional_units - (2.0 * 1.5 + 3.9)).abs() < 1e-9);
        assert_eq!(r.memories, 0.0);
        assert!(r.total() >= r.functional_units);
    }

    #[test]
    fn memories_count_table1_blocks() {
        let (sr, lib, alloc) = scheduled(
            "proc f(i) { array x[8]; array y[8]; x[0] = i; y[0] = i; }",
            &[],
        );
        let r = estimate_area(&sr, &lib, &alloc);
        assert!((r.memories - 2.0 * MEMORY_AREA).abs() < 1e-9);
    }

    #[test]
    fn loop_state_needs_registers() {
        let (sr, lib, alloc) = scheduled(
            "proc f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1; } out s = s; }",
            &[("a1", 1), ("i1", 1), ("cp1", 1)],
        );
        let r = estimate_area(&sr, &lib, &alloc);
        // At least the two loop phis hold state.
        assert!(r.register_count >= 2, "{}", r.register_count);
    }

    #[test]
    fn straightline_single_state_needs_no_cross_state_registers() {
        let (sr, lib, alloc) = scheduled("proc f(a) { out y = a + a; }", &[("a1", 1)]);
        let r = estimate_area(&sr, &lib, &alloc);
        assert_eq!(r.register_count, 0);
    }
}
