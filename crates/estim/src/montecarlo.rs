//! Monte-Carlo simulation of the STG.
//!
//! A seeded random walk over the state transition graph, used to
//! cross-validate the analytic machinery: the sample mean of walk lengths
//! must converge to the absorbing-chain solution of [`crate::markov`], and
//! per-state visit frequencies to the expected-visit counts. This guards
//! the whole estimation stack (transition assembly, probability algebra,
//! the linear solver) against silent inconsistencies.

use fact_prng::rngs::StdRng;
use fact_prng::{Rng, SeedableRng};
use fact_sched::{StateId, Stg};

/// Aggregate results of a batch of random walks.
#[derive(Clone, Debug)]
pub struct MonteCarloResult {
    /// Number of walks that reached `done` within the step budget.
    pub completed: usize,
    /// Number of walks cut off by the step budget.
    pub truncated: usize,
    /// Sample mean of cycles to completion.
    pub mean_length: f64,
    /// Sample standard deviation of cycles to completion.
    pub std_dev: f64,
    /// Mean visits per state (index by [`StateId::index`]).
    pub mean_visits: Vec<f64>,
}

impl MonteCarloResult {
    /// Mean visits to `s` per execution.
    pub fn visits(&self, s: StateId) -> f64 {
        self.mean_visits[s.index()]
    }
}

/// Runs `walks` random walks from the entry to the done state.
///
/// Each step picks an outgoing transition with its annotated probability
/// (transitions of a state must sum to ~1, as [`Stg::validate`] enforces).
/// Walks exceeding `max_steps` are truncated and excluded from the mean.
pub fn simulate(stg: &Stg, walks: usize, max_steps: usize, seed: u64) -> MonteCarloResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let done = stg.done();
    let mut lengths: Vec<f64> = Vec::with_capacity(walks);
    let mut visit_totals = vec![0.0f64; stg.num_states()];
    let mut truncated = 0usize;

    // Pre-index outgoing transitions per state for O(1) stepping.
    let mut outgoing: Vec<Vec<(StateId, f64)>> = vec![Vec::new(); stg.num_states()];
    for t in stg.transitions() {
        outgoing[t.from.index()].push((t.to, t.prob));
    }

    for _ in 0..walks {
        let mut cur = stg.entry();
        let mut steps = 0usize;
        let mut visits = vec![0u32; stg.num_states()];
        let mut ok = true;
        while cur != done {
            visits[cur.index()] += 1;
            steps += 1;
            if steps > max_steps {
                ok = false;
                truncated += 1;
                break;
            }
            let outs = &outgoing[cur.index()];
            if outs.is_empty() {
                ok = false;
                truncated += 1;
                break;
            }
            let mut x: f64 = rng.gen_range(0.0..1.0);
            let mut next = outs[outs.len() - 1].0;
            for &(to, p) in outs {
                if x < p {
                    next = to;
                    break;
                }
                x -= p;
            }
            cur = next;
        }
        if ok {
            lengths.push(steps as f64);
            for (i, &v) in visits.iter().enumerate() {
                visit_totals[i] += v as f64;
            }
        }
    }

    let n = lengths.len().max(1) as f64;
    let mean = lengths.iter().sum::<f64>() / n;
    let var = lengths.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
    MonteCarloResult {
        completed: lengths.len(),
        truncated,
        mean_length: mean,
        std_dev: var.sqrt(),
        mean_visits: visit_totals.iter().map(|&v| v / n).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::analyze;

    fn geometric(q: f64) -> Stg {
        let mut stg = Stg::new();
        let k = stg.add_state("k");
        stg.set_entry(k);
        stg.add_transition(k, k, q, "");
        let done = stg.done();
        stg.add_transition(k, done, 1.0 - q, "");
        stg
    }

    #[test]
    fn matches_analytic_mean_on_geometric_loop() {
        let stg = geometric(0.9);
        let analytic = analyze(&stg).unwrap().average_schedule_length;
        let mc = simulate(&stg, 20_000, 10_000, 7);
        assert_eq!(mc.truncated, 0);
        let rel = (mc.mean_length - analytic).abs() / analytic;
        assert!(rel < 0.03, "MC {} vs analytic {analytic}", mc.mean_length);
    }

    #[test]
    fn matches_analytic_visits_on_branching_chain() {
        // entry -> (0.3: a ; 0.7: b) -> done, with a self-looping at 0.5.
        let mut stg = Stg::new();
        let e = stg.add_state("e");
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_entry(e);
        stg.add_transition(e, a, 0.3, "");
        stg.add_transition(e, b, 0.7, "");
        stg.add_transition(a, a, 0.5, "");
        let done = stg.done();
        stg.add_transition(a, done, 0.5, "");
        stg.add_transition(b, done, 1.0, "");
        let analytic = analyze(&stg).unwrap();
        let mc = simulate(&stg, 40_000, 10_000, 11);
        for s in stg.state_ids() {
            if s == stg.done() {
                continue;
            }
            let diff = (mc.visits(s) - analytic.visits(s)).abs();
            assert!(
                diff < 0.02,
                "{s}: MC {} vs analytic {}",
                mc.visits(s),
                analytic.visits(s)
            );
        }
    }

    #[test]
    fn truncation_is_reported() {
        let stg = geometric(0.999);
        let mc = simulate(&stg, 50, 10, 3);
        assert!(mc.truncated > 0);
        assert_eq!(mc.completed + mc.truncated, 50);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let stg = geometric(0.8);
        let a = simulate(&stg, 500, 1000, 42);
        let b = simulate(&stg, 500, 1000, 42);
        assert_eq!(a.mean_length, b.mean_length);
        assert_eq!(a.completed, b.completed);
    }
}
