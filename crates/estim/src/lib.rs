//! # fact-estim — STG analysis and high-level power estimation
//!
//! Implements the paper's §2.2 estimation machinery:
//!
//! * [`markov`] — absorbing-Markov expected visits → state probabilities
//!   and *average schedule length* (Bhattacharya et al. \[10\]);
//! * [`power`] — energy accounting `E = C_type·Vdd²·N_ops` over functional
//!   units, registers, memories, plus interconnect/controller overhead
//!   (Chandrakasan et al. \[5\], extended to CFI designs);
//! * [`vdd`] — supply-voltage scaling with `Delay = k·Vdd/(Vdd−Vt)²`,
//!   reproducing Example 1's 5 V → 4.29 V computation;
//! * [`library`] — the paper's Table 1 and §5 functional-unit libraries;
//! * [`area`] — allocation-driven area accounting (Table 1's area column);
//! * [`evaluate()`] — one-call estimation used in the transformation
//!   search's inner loop.

#![warn(missing_docs)]

pub mod area;
pub mod evaluate;
pub mod library;
pub mod markov;
pub mod memo;
pub mod montecarlo;
pub mod power;
pub mod vdd;

pub use area::{estimate_area, AreaReport};
pub use evaluate::{
    evaluate, evaluate_power_mode, evaluate_power_mode_with_memo, evaluate_with_memo, markov_of,
};
pub use library::{section5_library, table1_library};
pub use markov::{analyze, analyze_preferring_empirical, MarkovAnalysis};
pub use memo::MarkovMemo;
pub use montecarlo::{simulate as simulate_stg, MonteCarloResult};
pub use power::{energy_per_execution, estimate, EnergyBreakdown, Estimate};
pub use vdd::{delay_factor, scale_voltage, scaled_power, VDD_REF, VT};
