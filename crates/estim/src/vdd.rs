//! Supply-voltage scaling (paper §2.2, Example 1).
//!
//! Gate delay follows `Delay = k · Vdd / (Vdd − Vt)²` (Weste &
//! Eshraghian, the paper's reference \[11\]). When a transformation makes
//! the schedule shorter than the untransformed baseline, the paper trades
//! that slack for power by lowering `Vdd` until performance returns to the
//! baseline, then reports `P = E·Vdd_new² / (baseline time)`.

/// Reference supply voltage (the paper schedules at 5 V).
pub const VDD_REF: f64 = 5.0;

/// Threshold voltage (the paper assumes 1 V).
pub const VT: f64 = 1.0;

/// The (unnormalized) delay factor `Vdd / (Vdd − Vt)²`.
///
/// # Panics
/// Panics if `vdd <= VT` (the transistor would not switch).
pub fn delay_factor(vdd: f64) -> f64 {
    assert!(vdd > VT, "vdd {vdd} must exceed the threshold voltage {VT}");
    vdd / ((vdd - VT) * (vdd - VT))
}

/// Solves for the scaled supply voltage at which a design whose schedule
/// shortened from `base_cycles` to `new_cycles` (at [`VDD_REF`]) again
/// takes exactly the baseline's wall-clock time:
///
/// `delay_factor(ref)/delay_factor(new) = new_cycles / base_cycles`
///
/// (the paper's equation in Example 1, with 119.11/151.30 on the right).
/// Returns [`VDD_REF`] when the new schedule is not faster — voltage is
/// never scaled *up* — and also for degenerate cycle counts (zero,
/// negative, NaN, or infinite on either side), so garbage schedule
/// lengths can never turn into a sub-threshold voltage or a NaN that
/// poisons downstream rank comparisons.
///
/// Solved by bisection on the monotone-decreasing `delay_factor`.
pub fn scale_voltage(base_cycles: f64, new_cycles: f64) -> f64 {
    if !base_cycles.is_finite()
        || base_cycles <= 0.0
        || !new_cycles.is_finite()
        || new_cycles <= 0.0
        || new_cycles >= base_cycles
    {
        return VDD_REF;
    }
    let target = delay_factor(VDD_REF) * base_cycles / new_cycles;
    // delay_factor decreases with vdd on (VT, inf) for vdd > 2·... it is
    // decreasing for vdd > VT? d/dv [v/(v-t)^2] < 0 when v > -t... check:
    // derivative sign = ((v-t)^2 - v·2(v-t)) = (v-t)(v-t-2v) = (v-t)(-v-t) < 0
    // for v > t. So the factor decreases monotonically: a larger target
    // (slower allowed) means a smaller vdd.
    let mut lo = VT + 1e-6;
    let mut hi = VDD_REF;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if delay_factor(mid) > target {
            lo = mid; // too slow: raise voltage
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Power after Vdd scaling, in the paper's formulation:
/// `E · Vdd_new² / (base_cycles · clock_ns)` — the energy of the
/// transformed design delivered over the baseline's time budget.
///
/// Degenerate inputs (non-finite energy, or a non-positive or non-finite
/// time budget) yield `(f64::INFINITY, vdd)` rather than NaN: infinity
/// still orders as "worst possible power" under `partial_cmp`/`total_cmp`
/// in the search's rank sort, where a NaN would silently corrupt ranks.
pub fn scaled_power(
    energy_vdd2: f64,
    base_cycles: f64,
    new_cycles: f64,
    clock_ns: f64,
) -> (f64, f64) {
    let vdd = scale_voltage(base_cycles, new_cycles);
    let time = base_cycles.max(new_cycles) * clock_ns;
    if !energy_vdd2.is_finite() || !time.is_finite() || time <= 0.0 {
        return (f64::INFINITY, vdd);
    }
    (energy_vdd2 * vdd * vdd / time, vdd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_factor_decreases_with_voltage() {
        assert!(delay_factor(3.0) > delay_factor(4.0));
        assert!(delay_factor(4.0) > delay_factor(5.0));
    }

    #[test]
    fn papers_example1_numbers() {
        // 119.11 cycles transformed vs 151.30 baseline → Vdd_new = 4.29 V.
        let v = scale_voltage(151.30, 119.11);
        assert!((v - 4.29).abs() < 0.01, "got {v}");
    }

    #[test]
    fn no_speedup_means_no_scaling() {
        assert_eq!(scale_voltage(100.0, 100.0), VDD_REF);
        assert_eq!(scale_voltage(100.0, 120.0), VDD_REF);
        assert_eq!(scale_voltage(100.0, 0.0), VDD_REF);
    }

    #[test]
    fn degenerate_cycles_clamp_to_reference_voltage() {
        // Zero/negative/non-finite cycle counts on either side must never
        // reach the bisection: they fall back to the reference voltage.
        for (base, new) in [
            (0.0, 50.0),
            (-100.0, 50.0),
            (f64::NAN, 50.0),
            (f64::INFINITY, 50.0),
            (100.0, f64::NAN),
            (100.0, -5.0),
            (100.0, f64::INFINITY),
            (f64::NAN, f64::NAN),
        ] {
            let v = scale_voltage(base, new);
            assert_eq!(v, VDD_REF, "scale_voltage({base}, {new})");
            assert!(v.is_finite());
        }
    }

    #[test]
    fn scaled_power_never_returns_nan() {
        // Degenerate inputs clamp to +inf power (orders as worst), never NaN.
        for (e, base, new, clk) in [
            (665.58, 0.0, 0.0, 1.0),       // zero time budget
            (665.58, 100.0, 50.0, 0.0),    // zero clock
            (665.58, 100.0, 50.0, -1.0),   // negative clock
            (f64::NAN, 100.0, 50.0, 1.0),  // NaN energy
            (665.58, f64::NAN, 50.0, 1.0), // NaN baseline
            (665.58, 100.0, f64::NAN, 1.0),
        ] {
            let (p, v) = scaled_power(e, base, new, clk);
            assert!(!p.is_nan(), "scaled_power({e}, {base}, {new}, {clk}) = {p}");
            assert!((VT..=VDD_REF).contains(&v), "vdd {v} out of range");
        }
        assert_eq!(scaled_power(665.58, 0.0, 0.0, 1.0).0, f64::INFINITY);
    }

    #[test]
    fn scaled_voltage_recovers_baseline_time() {
        let v = scale_voltage(200.0, 100.0);
        // 100 cycles at the slower clock == 200 cycles at the reference.
        let ratio = delay_factor(v) / delay_factor(VDD_REF);
        assert!((ratio - 2.0).abs() < 1e-6);
        assert!(v < VDD_REF);
        assert!(v > VT);
    }

    #[test]
    fn papers_example1_power() {
        // E = 665.58·Vdd², baseline 151.30 cycles: P = 665.58·4.29²/(151.30·T).
        let (p, v) = scaled_power(665.58, 151.30, 119.11, 1.0);
        assert!((v - 4.29).abs() < 0.01);
        assert!((p - 665.58 * v * v / 151.30).abs() < 1e-9);
        // Paper quotes ≈ 80.96 per cycle_time unit.
        assert!((p - 80.96).abs() < 0.5, "got {p}");
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn delay_factor_rejects_subthreshold() {
        let _ = delay_factor(0.5);
    }
}
