//! Property-based tests of the Markov analysis: conservation laws that
//! must hold for any valid absorbing STG, and agreement between the
//! analytic solution and empirical annotations on geometric chains.

use fact_estim::{analyze, analyze_preferring_empirical};
use fact_sched::Stg;
use proptest::prelude::*;

/// A random layered chain: `n` states in a line; each state goes forward
/// with probability p_i and restarts from the entry with 1-p_i; the last
/// state always exits to done. Every state reaches done, so the chain is
/// a valid absorbing process.
fn chain_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..0.95, 1..7)
}

fn build(ps: &[f64]) -> Stg {
    let mut stg = Stg::new();
    let states: Vec<_> = (0..ps.len())
        .map(|i| stg.add_state(format!("s{i}")))
        .collect();
    stg.set_entry(states[0]);
    let done = stg.done();
    for (i, &p) in ps.iter().enumerate() {
        let next = if i + 1 < ps.len() {
            states[i + 1]
        } else {
            done
        };
        stg.add_transition(states[i], next, p, "fwd");
        stg.add_transition(states[i], states[0], 1.0 - p, "restart");
    }
    stg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn conservation_laws_hold(ps in chain_strategy()) {
        let stg = build(&ps);
        stg.validate().unwrap();
        let m = analyze(&stg).unwrap();
        // All visits non-negative; entry visited at least once.
        for s in stg.state_ids() {
            prop_assert!(m.visits(s) >= -1e-9);
        }
        prop_assert!(m.visits(stg.entry()) >= 1.0 - 1e-9);
        // Total length = sum of visits, finite and >= chain length... at
        // least 1 visit to the entry.
        prop_assert!(m.average_schedule_length.is_finite());
        prop_assert!(m.average_schedule_length >= ps.len() as f64 - 1e-9);
        // Flow conservation: visits(s) = inflow(s) (+1 for entry).
        for s in stg.state_ids() {
            if s == stg.done() {
                continue;
            }
            let inflow: f64 = stg
                .transitions()
                .iter()
                .filter(|t| t.to == s)
                .map(|t| m.visits(t.from) * t.prob)
                .sum();
            let expected = inflow + if s == stg.entry() { 1.0 } else { 0.0 };
            prop_assert!((m.visits(s) - expected).abs() < 1e-6,
                "state {s}: visits {} vs inflow {expected}", m.visits(s));
        }
        // Probabilities sum to one.
        let total: f64 = m.state_probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empirical_annotations_override_when_complete(ps in chain_strategy()) {
        let mut stg = build(&ps);
        // Annotate every reachable state with synthetic visit counts.
        let ids: Vec<_> = stg.state_ids().collect();
        let done = stg.done();
        for (i, s) in ids.iter().enumerate() {
            if *s != done {
                stg.state_mut(*s).expected_visits = Some(1.0 + i as f64);
            }
        }
        let m = analyze_preferring_empirical(&stg).unwrap();
        for (i, s) in ids.iter().enumerate() {
            if *s != done {
                prop_assert!((m.visits(*s) - (1.0 + i as f64)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empirical_falls_back_when_incomplete(ps in chain_strategy()) {
        let stg = build(&ps); // no annotations at all
        let analytic = analyze(&stg).unwrap();
        let preferred = analyze_preferring_empirical(&stg).unwrap();
        prop_assert!(
            (analytic.average_schedule_length - preferred.average_schedule_length).abs() < 1e-9
        );
    }

    #[test]
    fn geometric_loop_matches_closed_form(q in 0.01f64..0.99) {
        let mut stg = Stg::new();
        let k = stg.add_state("k");
        stg.set_entry(k);
        stg.add_transition(k, k, q, "");
        let done = stg.done();
        stg.add_transition(k, done, 1.0 - q, "");
        let m = analyze(&stg).unwrap();
        prop_assert!((m.visits(k) - 1.0 / (1.0 - q)).abs() < 1e-6);
    }
}
