#!/usr/bin/env bash
# Perf-trajectory benchmarks. Two harnesses:
#
#   search — search throughput (evals/sec over the §5 suite); writes
#            crates/bench/BENCH_search.json beside the committed
#            BENCH_search.baseline.json reference numbers.
#   sim    — simulation throughput (trace vectors/sec, scalar vs
#            batched engine); writes crates/bench/BENCH_sim.json.
#
# Usage:
#   scripts/bench.sh                   # both harnesses, full runs
#   scripts/bench.sh search            # one harness
#   scripts/bench.sh sim --smoke       # tiny run, JSON to stdout only
#   scripts/bench.sh search --budget 1000 --out /tmp/b.json
#   scripts/bench.sh sim --vectors 4096
set -euo pipefail
cd "$(dirname "$0")/.."

which=all
case "${1:-}" in
search | sim) which=$1; shift ;;
all) shift ;;
esac

if [ "$which" = search ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench search_perf -- "$@"
fi
if [ "$which" = sim ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench sim_perf -- "$@"
fi
