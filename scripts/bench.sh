#!/usr/bin/env bash
# Search-throughput benchmark: writes crates/bench/BENCH_search.json
# (beside BENCH_search.baseline.json, the committed reference numbers).
#
#   scripts/bench.sh            # full run (400 evals/benchmark budget)
#   scripts/bench.sh --smoke    # tiny run, JSON to stdout, writes nothing
#   scripts/bench.sh --budget 1000 --out /tmp/b.json
#
# The JSON records evals/sec, wall time, and cache hit rate per suite
# benchmark, one pass per engine mode — the repo's perf trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo bench -q -p fact-bench --bench search_perf -- "$@"
