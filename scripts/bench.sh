#!/usr/bin/env bash
# Perf-trajectory benchmarks. Two harnesses:
#
#   search — search throughput (evals/sec over the §5 suite); writes
#            crates/bench/BENCH_search.json beside the committed
#            BENCH_search.baseline.json reference numbers.
#   sim    — simulation throughput (trace vectors/sec, scalar vs
#            batched engine); writes crates/bench/BENCH_sim.json.
#   pareto — Pareto-frontier quality/throughput (frontier size,
#            hypervolume proxy, evals/sec); writes
#            crates/bench/BENCH_pareto.json (also with --smoke).
#   serve  — factd front-end load (requests/sec, p50/p99 latency under
#            hundreds of held connections, epoll vs threads); writes
#            crates/bench/BENCH_serve.json.
#
# Usage:
#   scripts/bench.sh                   # all harnesses, full runs
#   scripts/bench.sh search            # one harness
#   scripts/bench.sh sim --smoke       # tiny run, JSON to stdout only
#   scripts/bench.sh pareto --smoke    # Test2 only, still writes the file
#   scripts/bench.sh search --budget 1000 --out /tmp/b.json
#   scripts/bench.sh sim --vectors 4096
#   scripts/bench.sh serve --held 1024 --requests 500
set -euo pipefail
cd "$(dirname "$0")/.."

which=all
case "${1:-}" in
search | sim | pareto | serve) which=$1; shift ;;
all) shift ;;
esac

if [ "$which" = search ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench search_perf -- "$@"
fi
if [ "$which" = sim ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench sim_perf -- "$@"
fi
if [ "$which" = pareto ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench pareto_perf -- "$@"
fi
if [ "$which" = serve ] || [ "$which" = all ]; then
    cargo bench -q -p fact-bench --bench serve_perf -- "$@"
fi
