#!/usr/bin/env bash
# Tier-1 gate for this repository. Everything here runs fully offline —
# the workspace has zero external dependencies (see DESIGN.md §5,
# "Dependencies") — and must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== incremental-vs-full equivalence property tests"
cargo test -q -p fact-core --release --test incremental_equiv

echo "== batched-vs-scalar simulation property tests"
cargo test -q -p fact-sim --release --test batched_equiv
cargo test -q -p fact-core --release --test batched_sim

echo "== factd chaos smoke (fault injection, overload, crash-safe cache)"
cargo test -q --release --test serve_chaos

echo "== bench smoke runs (JSON well-formedness)"
scripts/bench.sh search --smoke \
    | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["bench"] == "search", d'
scripts/bench.sh sim --smoke \
    | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["bench"] == "sim", d'
scripts/bench.sh pareto --smoke > /dev/null
scripts/bench.sh serve --smoke > /tmp/serve_smoke.json
python3 - <<'EOF'
import json
with open("crates/bench/BENCH_pareto.json") as f:
    d = json.load(f)
assert d["bench"] == "pareto", d
suites = {s["name"]: s for p in d["passes"] for s in p["suites"]}
t2 = suites["Test2"]
assert t2["frontier"] >= 8, f"Test2 frontier too small: {t2}"
print(f"BENCH_pareto.json ok: Test2 frontier={t2['frontier']} hv={t2['hypervolume']}")
EOF

echo "== serve front-end smoke gate (fresh run + committed BENCH_serve.json)"
python3 - <<'EOF'
import json
# The fresh smoke run must be live and sane on this container: every
# reply within the job-timeout budget, and a conservative floor on
# requests/sec (the full run sustains thousands; 10/s only catches a
# front end that is stalling, not one that is merely slow).
FLOOR = 10.0
with open("/tmp/serve_smoke.json") as f:
    d = json.load(f)
assert d["bench"] == "serve", d
for p in d["passes"]:
    assert p["errors"] == 0, f"smoke traffic errors: {p}"
    assert p["p99_ms"] < p["timeout_budget_ms"], f"p99 over budget: {p}"
    assert p["jobs_per_sec"] >= FLOOR, f"front end stalling: {p}"
line = " ".join(f"{p['io_model']}:{p['jobs_per_sec']:.0f}/s" for p in d["passes"])
print(f"serve smoke ok: {line}")

# The committed full run is the recorded trajectory: it must carry the
# high-concurrency measurement (>= 500 held connections for epoll,
# >= 256 for the threads pass) and the event loop must not have lost
# to the thread-per-connection fallback it replaced.
with open("crates/bench/BENCH_serve.json") as f:
    d = json.load(f)
assert d["bench"] == "serve", d
passes = {p["io_model"]: p for p in d["passes"]}
epoll, threads = passes["epoll"], passes["threads"]
assert epoll["held_connections"] >= 500, f"epoll pass under 500 held: {epoll}"
assert threads["held_connections"] >= 256, f"threads pass under 256 held: {threads}"
for p in (epoll, threads):
    assert p["errors"] == 0, f"recorded run had traffic errors: {p}"
    assert p["p99_ms"] < p["timeout_budget_ms"], f"recorded p99 over budget: {p}"
    assert p["jobs_per_sec"] >= 25.0, f"recorded throughput implausibly low: {p}"
assert epoll["jobs_per_sec"] >= threads["jobs_per_sec"], (
    f"epoll lost to threads: {epoll['jobs_per_sec']} < {threads['jobs_per_sec']}"
)
print(
    f"BENCH_serve.json ok: epoll {epoll['jobs_per_sec']}/s @{epoll['held_connections']} held "
    f"(p99 {epoll['p99_ms']}ms) vs threads {threads['jobs_per_sec']}/s "
    f"(x{epoll['jobs_per_sec']/threads['jobs_per_sec']:.2f})"
)
EOF

echo "== engine-selector never-lose gate (BENCH_sim.json)"
python3 - <<'EOF'
import json
with open("crates/bench/BENCH_sim.json") as f:
    d = json.load(f)
assert d["bench"] == "sim", d
# The divergence-aware selector must never lose to the scalar baseline:
# every suite's chosen-engine speedup stays at parity or better.
bad = [(s["name"], s["speedup"]) for s in d["suites"] if s["speedup"] < 1.0]
assert not bad, f"selector lost on: {bad}"
line = " ".join(f"{s['name']}:{s['speedup']}x({s['chosen']})" for s in d["suites"])
print(f"BENCH_sim.json ok: {line}")
EOF

echo "== search never-regress gate (BENCH_search.json)"
python3 - <<'EOF'
import json
# Floor calibrated on the current CI container (see DESIGN.md §10.4);
# regenerate BENCH_search.json on comparable hardware before bumping.
FLOOR = 9000.0
with open("crates/bench/BENCH_search.json") as f:
    d = json.load(f)
assert d["bench"] == "search", d
passes = {p["mode"]: p for p in d["passes"]}
inc = passes["incremental"]["total_evals_per_sec"]
per = passes["per_candidate"]["total_evals_per_sec"]
assert inc >= FLOOR, f"incremental throughput regressed: {inc} < floor {FLOOR}"
assert inc >= per, f"mega-batch dispatch lost to per-candidate: {inc} < {per}"
print(f"BENCH_search.json ok: incremental {inc} >= floor {FLOOR}, x{inc/per:.2f} vs per-candidate")
EOF

echo "== mega-batch vs per-candidate smoke gate (Test2, best of 3)"
for i in 1 2 3; do
    scripts/bench.sh search --smoke --budget 400 > "/tmp/search_smoke_$i.json"
done
python3 - <<'EOF'
import json
# Best-of-3 fresh runs: the mega-batch dispatch must beat per-candidate
# dispatch on Test2, the memory-bearing worst case (two simulation
# passes per candidate). Best-of suppresses scheduler/timing noise.
best = {}
for i in (1, 2, 3):
    with open(f"/tmp/search_smoke_{i}.json") as f:
        d = json.load(f)
    for p in d["passes"]:
        t2 = next(s for s in p["suites"] if s["name"] == "Test2")
        best[p["mode"]] = max(best.get(p["mode"], 0.0), t2["evals_per_sec"])
inc, per = best["incremental"], best["per_candidate"]
assert inc >= per, f"mega-batch lost to per-candidate on Test2: {inc} < {per}"
print(f"Test2 smoke ok: mega {inc:.0f} evals/s vs per-candidate {per:.0f} (x{inc/per:.2f})")
EOF

echo "ci.sh: all gates passed"
