#!/usr/bin/env bash
# Tier-1 gate for this repository. Everything here runs fully offline —
# the workspace has zero external dependencies (see DESIGN.md §5,
# "Dependencies") — and must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== incremental-vs-full equivalence property tests"
cargo test -q -p fact-core --release --test incremental_equiv

echo "== batched-vs-scalar simulation property tests"
cargo test -q -p fact-sim --release --test batched_equiv
cargo test -q -p fact-core --release --test batched_sim

echo "== bench smoke runs (JSON well-formedness)"
scripts/bench.sh search --smoke \
    | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["bench"] == "search", d'
scripts/bench.sh sim --smoke \
    | python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["bench"] == "sim", d'
scripts/bench.sh pareto --smoke > /dev/null
python3 - <<'EOF'
import json
with open("crates/bench/BENCH_pareto.json") as f:
    d = json.load(f)
assert d["bench"] == "pareto", d
suites = {s["name"]: s for p in d["passes"] for s in p["suites"]}
t2 = suites["Test2"]
assert t2["frontier"] >= 8, f"Test2 frontier too small: {t2}"
print(f"BENCH_pareto.json ok: Test2 frontier={t2['frontier']} hv={t2['hypervolume']}")
EOF

echo "== engine-selector never-lose gate (BENCH_sim.json)"
python3 - <<'EOF'
import json
with open("crates/bench/BENCH_sim.json") as f:
    d = json.load(f)
assert d["bench"] == "sim", d
# The divergence-aware selector must never lose to the scalar baseline:
# every suite's chosen-engine speedup stays at parity or better.
bad = [(s["name"], s["speedup"]) for s in d["suites"] if s["speedup"] < 1.0]
assert not bad, f"selector lost on: {bad}"
line = " ".join(f"{s['name']}:{s['speedup']}x({s['chosen']})" for s in d["suites"])
print(f"BENCH_sim.json ok: {line}")
EOF

echo "ci.sh: all gates passed"
