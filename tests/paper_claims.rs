//! The paper's headline claims, asserted end to end through the
//! reproduction harness (`fact-bench` drivers). Absolute values differ
//! from the paper (our substrate is this workspace's scheduler, not the
//! authors' Wavesched + layout flow); the *shape* — who wins, by roughly
//! what factor, and through which mechanism — is what these tests pin.

#[test]
fn table2_shape_holds() {
    let r = fact_bench::table2::run(true);
    assert_eq!(r.rows.len(), 6);
    // Ordering FACT >= Flamel >= M1 on every row.
    for row in &r.rows {
        let (m1, fl, fact) = (
            row.t_m1.unwrap(),
            row.t_flamel.unwrap(),
            row.t_fact.unwrap(),
        );
        assert!(fact >= 0.95 * fl, "{}", row.circuit);
        assert!(fl >= 0.95 * m1, "{}", row.circuit);
    }
    // Aggregate improvements in the paper's direction.
    assert!(r.fact_vs_m1.unwrap() > 1.2, "{:?}", r.fact_vs_m1);
    assert!(r.fact_vs_flamel.unwrap() > 1.05, "{:?}", r.fact_vs_flamel);
    assert!(
        r.power_saving_pct.unwrap() > 20.0,
        "{:?}",
        r.power_saving_pct
    );
}

#[test]
fn example1_vdd_scaling_matches_paper_exactly() {
    let r = fact_bench::example1::run();
    // The scaling equation applied to the paper's own lengths must yield
    // the paper's 4.29 V — this is arithmetic, not simulation.
    assert!((r.vdd_paper - 4.29).abs() < 0.01);
    // Our schedule lengths bracket the same regime.
    assert!(r.len_full <= r.len_base);
}

#[test]
fn figure1_shows_iteration_overlap() {
    let r = fact_bench::fig1::run();
    assert!(r.overlaps_iterations, "{:?}", r.schedule.report);
}

#[test]
fn figure2_example2_speedup_shape() {
    let r = fact_bench::fig2::run(true);
    // Paper: 1.25x; ours lands in the same band via the same rewrite.
    assert!(r.speedup > 1.15 && r.speedup < 2.5, "speedup {}", r.speedup);
    assert!(r.applied.iter().any(|d| d.contains("sum-of-differences")));
    assert!(r.phases_after >= 3);
}

#[test]
fn figure4_example3_exact_cycle_counts() {
    let r = fact_bench::fig4::run();
    assert!((r.cycles_before - 3.0).abs() < 0.51);
    assert!((r.cycles_after - 2.0).abs() < 0.51);
    assert_eq!(r.muls_after, 1);
}

#[test]
fn ablation_quantifies_the_design_choices() {
    let rows = fact_bench::ablation::run(true);
    // Scheduling feedback strictly matters somewhere (Test2).
    assert!(rows.iter().any(|r| r.full < 0.95 * r.no_feedback));
    // The scheduler substrate strictly matters somewhere (GCD's kernel).
    assert!(rows.iter().any(|r| r.m1 < 0.7 * r.weak_scheduler));
}

#[test]
fn reports_render_without_panicking() {
    let t = fact_bench::table2::run(true);
    let s = fact_bench::table2::report(&t);
    assert!(s.contains("GCD") && s.contains("FACT"));
    let e = fact_bench::example1::run();
    assert!(fact_bench::example1::report(&e).contains("4.29"));
    let f1 = fact_bench::fig1::run();
    assert!(fact_bench::fig1::report(&f1).contains("digraph"));
    let f2 = fact_bench::fig2::run(true);
    assert!(fact_bench::fig2::report(&f2).contains("speedup"));
    let f4 = fact_bench::fig4::run();
    assert!(fact_bench::fig4::report(&f4).contains("cycles"));
}
