//! Cross-crate integration tests: the full FACT pipeline — frontend,
//! profiling, scheduling, estimation, transformation search — on every
//! benchmark of the §5 suite, with functional equivalence enforced on
//! every optimized output.

use fact_core::{
    flamel, m1, optimize, suite, FactConfig, Objective, SearchConfig, TransformLibrary,
};
use fact_estim::{markov_of, section5_library};
use fact_sched::SchedOptions;
use fact_sim::check_equivalence;

fn quick(objective: Objective) -> FactConfig {
    FactConfig {
        objective,
        search: SearchConfig {
            max_moves: 2,
            in_set_size: 2,
            max_rounds: 3,
            max_evaluations: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn every_benchmark_schedules_and_validates() {
    let (lib, rules) = section5_library();
    for b in suite(&lib) {
        let r = m1(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &SchedOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        r.schedule.stg.validate().unwrap();
        let m = markov_of(&r.schedule).unwrap();
        assert!(
            m.average_schedule_length.is_finite() && m.average_schedule_length > 0.0,
            "{}",
            b.name
        );
    }
}

#[test]
fn fact_output_is_equivalent_on_every_benchmark() {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    for b in suite(&lib) {
        let r = optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            &quick(Objective::Throughput),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        check_equivalence(&b.function, &r.best, &b.traces, 7)
            .unwrap_or_else(|m| panic!("{}: {m}", b.name));
        // FACT never regresses its own baseline.
        assert!(
            r.estimate.average_schedule_length <= r.baseline.average_schedule_length + 1e-6,
            "{}: {} vs {}",
            b.name,
            r.estimate.average_schedule_length,
            r.baseline.average_schedule_length
        );
    }
}

#[test]
fn fact_beats_baselines_somewhere_and_never_loses() {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    let mut strict_wins_m1 = 0;
    let mut strict_wins_flamel = 0;
    for b in suite(&lib) {
        let m = m1(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &SchedOptions::default(),
        )
        .unwrap();
        let fl = flamel(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &SchedOptions::default(),
        )
        .unwrap();
        let fa = optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            &quick(Objective::Throughput),
        )
        .unwrap();
        let (lm, lf, la) = (
            m.estimate.average_schedule_length,
            fl.estimate.average_schedule_length,
            fa.estimate.average_schedule_length,
        );
        assert!(la <= lm * 1.02, "{}: FACT {la} worse than M1 {lm}", b.name);
        assert!(
            la <= lf * 1.02,
            "{}: FACT {la} worse than Flamel {lf}",
            b.name
        );
        if la < 0.95 * lm {
            strict_wins_m1 += 1;
        }
        if la < 0.95 * lf {
            strict_wins_flamel += 1;
        }
    }
    // The paper's headline: FACT strictly improves multiple benchmarks
    // over both baselines. (Under this quick search budget the deeper
    // multi-step chains — e.g. FIR's commute→associate→factor — are not
    // always found; the full-budget run in `fact-bench` asserts the
    // aggregate ratios.)
    assert!(strict_wins_m1 >= 3, "strict wins vs M1: {strict_wins_m1}");
    assert!(
        strict_wins_flamel >= 1,
        "strict wins vs Flamel: {strict_wins_flamel}"
    );
}

#[test]
fn power_mode_never_exceeds_baseline_power_or_time() {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    for b in suite(&lib) {
        let r = optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &tlib,
            &quick(Objective::Power),
        )
        .unwrap();
        assert!(
            r.estimate.power <= r.baseline.power * 1.001,
            "{}: {} vs {}",
            b.name,
            r.estimate.power,
            r.baseline.power
        );
        // Iso-performance: the winner is never slower than the baseline.
        assert!(
            r.estimate.average_schedule_length <= r.baseline.average_schedule_length * 1.002,
            "{}",
            b.name
        );
        assert!(r.estimate.vdd <= 5.0 + 1e-9);
        assert!(r.estimate.vdd > 1.0);
    }
}

#[test]
fn deterministic_across_runs() {
    let (lib, rules) = section5_library();
    let tlib = TransformLibrary::full();
    let b = suite(&lib).remove(1); // FIR
    let r1 = optimize(
        &b.function,
        &lib,
        &rules,
        &b.allocation,
        &b.traces,
        &tlib,
        &quick(Objective::Throughput),
    )
    .unwrap();
    let r2 = optimize(
        &b.function,
        &lib,
        &rules,
        &b.allocation,
        &b.traces,
        &tlib,
        &quick(Objective::Throughput),
    )
    .unwrap();
    assert_eq!(
        r1.estimate.average_schedule_length,
        r2.estimate.average_schedule_length
    );
    assert_eq!(r1.applied, r2.applied);
    assert_eq!(r1.evaluated, r2.evaluated);
}

#[test]
fn facade_crate_reexports_work() {
    // The `fact` facade exposes the whole stack.
    let f = fact::lang::compile("proc f(a) { out y = a + 1; }").unwrap();
    let env = std::collections::HashMap::from([("a".to_string(), 1)]);
    let r = fact::sim::execute(&f, &env).unwrap();
    assert_eq!(r.outputs[0].1, 2);
}
