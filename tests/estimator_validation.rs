//! Cross-validation of the estimation stack on real schedules: the
//! analytic absorbing-chain solution and a seeded Monte-Carlo walk over
//! the same STG must agree on every benchmark of the suite. This catches
//! inconsistencies anywhere in the chain: STG transition assembly,
//! probability algebra, and the linear solver.

use fact_core::suite;
use fact_estim::{analyze, section5_library, simulate_stg};
use fact_sched::{schedule, SchedOptions};
use fact_sim::profile;

#[test]
fn monte_carlo_agrees_with_markov_on_every_benchmark() {
    let (lib, rules) = section5_library();
    for b in suite(&lib) {
        let prof = profile(&b.function, &b.traces);
        let sr = schedule(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &prof,
            &SchedOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let analytic = analyze(&sr.stg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mc = simulate_stg(&sr.stg, 8_000, 2_000_000, 1234);
        assert_eq!(mc.truncated, 0, "{}: truncated walks", b.name);
        let rel = (mc.mean_length - analytic.average_schedule_length).abs()
            / analytic.average_schedule_length;
        assert!(
            rel < 0.05,
            "{}: MC {:.2} vs analytic {:.2} (rel {:.3})",
            b.name,
            mc.mean_length,
            analytic.average_schedule_length,
            rel
        );
    }
}

#[test]
fn monte_carlo_agrees_per_state_on_test1() {
    let f = fact_lang::compile(fact_core::suite::TEST1_SRC).unwrap();
    let (lib, rules) = fact_estim::table1_library();
    let mut alloc = fact_sched::Allocation::new();
    alloc.set(lib.by_name("comp1").unwrap(), 2);
    alloc.set(lib.by_name("cla1").unwrap(), 2);
    alloc.set(lib.by_name("incr1").unwrap(), 1);
    alloc.set(lib.by_name("w_mult1").unwrap(), 1);
    let traces = fact_sim::generate(
        &[
            ("c1".to_string(), fact_sim::InputSpec::Constant(18)),
            ("c2".to_string(), fact_sim::InputSpec::Constant(49)),
        ],
        4,
        7,
    );
    let prof = profile(&f, &traces);
    let sr = schedule(&f, &lib, &rules, &alloc, &prof, &SchedOptions::default()).unwrap();
    let analytic = analyze(&sr.stg).unwrap();
    let mc = simulate_stg(&sr.stg, 12_000, 1_000_000, 99);
    for s in sr.stg.state_ids() {
        if s == sr.stg.done() {
            continue;
        }
        let a = analytic.visits(s);
        let m = mc.visits(s);
        let tol = 0.05 * a.max(1.0);
        assert!((a - m).abs() < tol, "{s}: analytic {a:.2} vs MC {m:.2}");
    }
}
