//! End-to-end test of the `factd` daemon: boots a server on an
//! ephemeral port, submits concurrent optimization jobs from the §5
//! suite over real TCP connections, and checks timeouts, backpressure
//! stats, and cross-job cache sharing.

use fact_serve::{parse, Server, ServerConfig, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;

fn start_server(workers: usize) -> (SocketAddr, fact_serve::ServerHandle, thread::JoinHandle<()>) {
    start_server_with(|c| c.workers = workers)
}

fn start_server_with(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (SocketAddr, fact_serve::ServerHandle, thread::JoinHandle<()>) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 16,
        default_timeout_ms: 120_000,
        cache_shards: 8,
        stats_interval_s: 0,
        log: false,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn roundtrip(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    parse(reply.trim()).expect("reply is one line of JSON")
}

/// A §5-style job as a one-line protocol request (the wire format is
/// newline-delimited, so the request must not contain newlines — the
/// compact JSON writer guarantees that).
fn job_line(
    id: &str,
    source: &str,
    alloc: &[(&str, i64)],
    extra: &[(&'static str, Value)],
) -> String {
    request_line("optimize", id, source, alloc, extra)
}

/// Like [`job_line`] but with an explicit request type (`optimize` or
/// `pareto` — both share the job envelope).
fn request_line(
    kind: &str,
    id: &str,
    source: &str,
    alloc: &[(&str, i64)],
    extra: &[(&'static str, Value)],
) -> String {
    let alloc = Value::Object(
        alloc
            .iter()
            .map(|(u, n)| (u.to_string(), Value::Int(*n)))
            .collect(),
    );
    let traces = Value::object([
        ("n", Value::Int(4)),
        ("seed", Value::Int(7)),
        (
            "inputs",
            Value::object([
                ("n", Value::object([("const", Value::Int(10))])),
                ("a", Value::object([("const", Value::Int(2))])),
                ("b", Value::object([("const", Value::Int(3))])),
            ]),
        ),
    ]);
    let mut req = vec![
        ("type", Value::Str(kind.into())),
        ("id", Value::Str(id.into())),
        ("source", Value::Str(source.into())),
        ("alloc", alloc),
        ("traces", traces),
        (
            "search",
            Value::object([("max_evaluations", Value::Int(60))]),
        ),
    ];
    req.extend(extra.iter().cloned());
    Value::object(req).to_json()
}

/// The factorable-loop behavior the FACT search reliably improves
/// (distributivity: `t*a + t*b → t*(a+b)` frees a multiplier cycle).
const FACTORABLE: &str = "proc f(n, a, b) { var s = 0; var i = 0; \
     while (i < n) { var t = s + 1; s = t * a + t * b; i = i + 1; } out s = s; }";

const ALLOC: &[(&str, i64)] = &[("a1", 2), ("mt1", 1), ("cp1", 1), ("i1", 2), ("sb1", 1)];

#[test]
fn serves_three_concurrent_jobs_and_shares_the_cache() {
    let (addr, handle, join) = start_server(2);

    // Three concurrent clients, same §5-style job under different ids.
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let line = job_line(&format!("job{i}"), FACTORABLE, ALLOC, &[]);
            thread::spawn(move || roundtrip(addr, &line))
        })
        .collect();
    let replies: Vec<Value> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(
            reply.get("type").and_then(Value::as_str),
            Some("result"),
            "job{i} reply: {}",
            reply.to_json()
        );
        assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            reply.get("id").and_then(Value::as_str),
            Some(format!("job{i}").as_str())
        );
        assert!(reply.get("evaluated").unwrap().as_i64().unwrap() > 0);
        let base = reply.get("baseline").unwrap().get("cycles").unwrap();
        let opt = reply.get("optimized").unwrap().get("cycles").unwrap();
        assert!(opt.as_f64().unwrap() <= base.as_f64().unwrap());
    }
    // Identical jobs must land on identical transformation paths
    // regardless of which worker ran them (determinism over the wire).
    let applied: Vec<String> = replies
        .iter()
        .map(|r| r.get("applied").unwrap().to_json())
        .collect();
    assert_eq!(applied[0], applied[1]);
    assert_eq!(applied[0], applied[2]);

    // A repeat of the same job is answered from the shared cache.
    let repeat = roundtrip(addr, &job_line("again", FACTORABLE, ALLOC, &[]));
    assert_eq!(repeat.get("status").and_then(Value::as_str), Some("ok"));
    let hits = repeat.get("cache_hits").unwrap().as_i64().unwrap();
    let evals = repeat.get("evaluated").unwrap().as_i64().unwrap();
    assert_eq!(hits, evals, "warm job should be fully cache-served");

    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stats.get("jobs_submitted").unwrap().as_i64(), Some(4));
    assert_eq!(stats.get("jobs_completed").unwrap().as_i64(), Some(4));
    assert!(
        stats.get("cache_hit_rate").unwrap().as_f64().unwrap() > 0.0,
        "stats: {}",
        stats.to_json()
    );
    assert!(stats.get("cache_entries").unwrap().as_i64().unwrap() > 0);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn per_job_timeout_returns_best_so_far() {
    let (addr, handle, join) = start_server(1);
    // A 1 ms deadline on a huge search budget: the deadline fires first
    // and the reply must come back promptly with status "timeout".
    let line = job_line(
        "deadline",
        FACTORABLE,
        ALLOC,
        &[
            (
                "search",
                Value::object([
                    ("max_evaluations", Value::Int(100_000)),
                    ("max_rounds", Value::Int(100_000)),
                    ("max_moves", Value::Int(50)),
                ]),
            ),
            ("timeout_ms", Value::Int(1)),
        ],
    );
    let started = std::time::Instant::now();
    let reply = roundtrip(addr, &line);
    assert!(
        started.elapsed().as_secs() < 15,
        "timeout reply took {:?}",
        started.elapsed()
    );
    match reply.get("type").and_then(Value::as_str) {
        // Wind-down path: partial result, explicitly marked.
        Some("result") => {
            assert_eq!(reply.get("status").and_then(Value::as_str), Some("timeout"));
            assert_eq!(reply.get("stopped").and_then(Value::as_bool), Some(true));
        }
        // The job was cut before producing anything.
        Some("error") => {
            assert_eq!(reply.get("error").and_then(Value::as_str), Some("timeout"));
        }
        other => panic!("unexpected reply type {other:?}: {}", reply.to_json()),
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn pareto_job_returns_the_full_curve_and_shows_in_stats() {
    let (addr, handle, join) = start_server(2);

    let line = request_line(
        "pareto",
        "curve",
        FACTORABLE,
        ALLOC,
        &[
            ("archive_capacity", Value::Int(16)),
            ("vdd_steps", Value::Int(6)),
        ],
    );
    let reply = roundtrip(addr, &line);
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("pareto_result"),
        "reply: {}",
        reply.to_json()
    );
    assert_eq!(reply.get("id").and_then(Value::as_str), Some("curve"));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    let frontier = match reply.get("frontier").unwrap() {
        Value::Array(a) => a,
        other => panic!("frontier must be an array, got {other:?}"),
    };
    assert!(!frontier.is_empty());
    assert!(reply.get("archive_len").unwrap().as_i64().unwrap() >= 1);
    // The curve is a nondominated set sorted by latency: energy must
    // strictly fall as latency rises.
    for pair in frontier.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let lat = |p: &Value| p.get("latency_cycles").unwrap().as_f64().unwrap();
        let en = |p: &Value| p.get("energy").unwrap().as_f64().unwrap();
        assert!(lat(a) <= lat(b));
        assert!(en(a) >= en(b));
    }
    for p in frontier {
        let vdd = p.get("vdd").unwrap().as_f64().unwrap();
        assert!(vdd > 1.0 && vdd <= 5.0 + 1e-12, "vdd {vdd} out of range");
        assert!(p.get("power").unwrap().as_f64().unwrap() > 0.0);
    }

    // An optimize job alongside, then both kinds show in the counters.
    let opt = roundtrip(addr, &job_line("plain", FACTORABLE, ALLOC, &[]));
    assert_eq!(opt.get("status").and_then(Value::as_str), Some("ok"));

    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stats.get("pareto_jobs").unwrap().as_i64(), Some(1));
    assert_eq!(stats.get("optimize_jobs").unwrap().as_i64(), Some(1));
    assert_eq!(
        stats.get("pareto_points").unwrap().as_i64(),
        Some(frontier.len() as i64),
        "stats: {}",
        stats.to_json()
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_during_inflight_job_drains_with_best_so_far() {
    // An injected 4 s evaluation delay holds the job in-flight past the
    // shutdown below, deterministically — a plain search could converge
    // before shutdown lands and reply "ok" instead of draining.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        stats_interval_s: 0,
        log: false,
        faults: fact_serve::FaultSpec::parse("seed=1,slow=1,slow_ms=4000").unwrap(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().unwrap());

    let line = job_line("inflight", FACTORABLE, ALLOC, &[]);
    let client = thread::spawn(move || roundtrip(addr, &line));
    // Let the worker pick the job up, then shut down mid-flight (the
    // SIGTERM path in factd calls exactly this handle method).
    thread::sleep(std::time::Duration::from_millis(500));
    let started = std::time::Instant::now();
    handle.shutdown();
    let reply = client.join().unwrap();
    assert!(
        started.elapsed().as_secs() < 15,
        "drain took {:?}",
        started.elapsed()
    );
    // The in-flight job winds down and delivers its best-so-far,
    // explicitly marked — the client is never left hanging.
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("result"),
        "reply: {}",
        reply.to_json()
    );
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("timeout"));
    assert_eq!(reply.get("stopped").and_then(Value::as_bool), Some(true));
    join.join().unwrap();
    // The listener is gone: new connections are refused (or reset
    // before a reply arrives).
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"type\":\"ping\"}\n").is_err() || {
                let mut reply = String::new();
                BufReader::new(s).read_line(&mut reply).unwrap_or(0) == 0
            }
        }
    );
}

#[test]
fn bad_jobs_get_error_replies_not_disconnects() {
    let (addr, handle, join) = start_server(1);
    // One connection, several requests in sequence.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |line: &str| -> Value {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse(reply.trim()).unwrap()
    };

    assert_eq!(
        ask(r#"{"type":"ping"}"#)
            .get("type")
            .and_then(Value::as_str),
        Some("pong")
    );
    let bad_compile = ask(&job_line("c", "proc f( {", ALLOC, &[]));
    assert_eq!(
        bad_compile.get("error").and_then(Value::as_str),
        Some("compile")
    );
    let bad_alloc = ask(&job_line("a", FACTORABLE, &[("warp9", 1)], &[]));
    assert_eq!(
        bad_alloc.get("error").and_then(Value::as_str),
        Some("alloc")
    );
    // The connection is still usable after both errors.
    assert_eq!(
        ask(r#"{"type":"ping"}"#)
            .get("type")
            .and_then(Value::as_str),
        Some("pong")
    );
    let stats = ask(r#"{"type":"stats"}"#);
    assert_eq!(stats.get("jobs_failed").unwrap().as_i64(), Some(2));

    handle.shutdown();
    join.join().unwrap();
}

/// A request dribbled in one byte (then seven bytes) at a time must be
/// reassembled exactly as if it arrived in one segment: the framing
/// layer buffers until the newline, whichever front end is running.
#[test]
fn fragmented_requests_are_reassembled() {
    let (addr, handle, join) = start_server(1);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    for b in b"{\"type\":\"ping\"}\n" {
        stream.write_all(&[*b]).unwrap();
        thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(
        parse(reply.trim())
            .unwrap()
            .get("type")
            .and_then(Value::as_str),
        Some("pong")
    );

    // A whole optimize job in 7-byte fragments works the same way.
    let line = job_line("dribble", FACTORABLE, ALLOC, &[]);
    for chunk in line.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        thread::sleep(std::time::Duration::from_millis(1));
    }
    stream.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let reply = parse(reply.trim()).unwrap();
    assert_eq!(reply.get("id").and_then(Value::as_str), Some("dribble"));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));

    handle.shutdown();
    join.join().unwrap();
}

/// The opposite fragmentation failure: several requests coalesced into
/// one TCP segment. Replies must come back one per request, in request
/// order (the protocol runs at most one job per connection at a time).
#[test]
fn pipelined_requests_in_one_segment_reply_in_order() {
    let (addr, handle, join) = start_server(1);
    let mut stream = TcpStream::connect(addr).unwrap();
    let batch = format!(
        "{}\n{}\n{}\n",
        r#"{"type":"ping"}"#,
        job_line("first", FACTORABLE, ALLOC, &[]),
        job_line("second", FACTORABLE, ALLOC, &[]),
    );
    stream.write_all(batch.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut next = || {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse(reply.trim()).expect("one JSON reply per request")
    };
    assert_eq!(next().get("type").and_then(Value::as_str), Some("pong"));
    let first = next();
    assert_eq!(first.get("id").and_then(Value::as_str), Some("first"));
    assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
    let second = next();
    assert_eq!(second.get("id").and_then(Value::as_str), Some("second"));
    assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));

    handle.shutdown();
    join.join().unwrap();
}

/// Event-loop lifecycle policy: connection counters in STATS, idle
/// reaping, slow-client disconnects, and the max-connections cap. These
/// behaviors are specific to the epoll front end, hence Linux-only.
#[cfg(target_os = "linux")]
mod event_loop_lifecycle {
    use super::*;
    use std::io::Read;
    use std::time::{Duration, Instant};

    fn counter(stats: &Value, key: &str) -> i64 {
        stats
            .get(key)
            .unwrap_or_else(|| panic!("stats missing `{key}`: {}", stats.to_json()))
            .as_i64()
            .unwrap()
    }

    /// Polls STATS over fresh connections until `key` reaches `want`
    /// (lifecycle events land asynchronously with the client's view).
    fn await_counter(addr: SocketAddr, key: &str, want: i64) -> i64 {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let got = counter(&roundtrip(addr, r#"{"type":"stats"}"#), key);
            if got >= want || Instant::now() > deadline {
                return got;
            }
            thread::sleep(Duration::from_millis(100));
        }
    }

    #[test]
    fn stats_report_connection_counters() {
        let (addr, handle, join) = start_server(1);
        // A held connection plus the short-lived stats connection below.
        let mut held = TcpStream::connect(addr).unwrap();
        held.write_all(b"{\"type\":\"ping\"}\n").unwrap();
        let mut reply = String::new();
        BufReader::new(held.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();

        let stats = roundtrip(addr, r#"{"type":"stats"}"#);
        assert!(counter(&stats, "connections_total") >= 2);
        assert!(counter(&stats, "connections_open") >= 1);
        assert!(counter(&stats, "loop_wakeups") >= 1);
        assert_eq!(counter(&stats, "idle_disconnects"), 0);
        assert_eq!(counter(&stats, "slow_client_disconnects"), 0);

        drop(held);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let (addr, handle, join) = start_server_with(|c| c.idle_timeout_s = 1);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"type\":\"ping\"}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(
            parse(reply.trim())
                .unwrap()
                .get("type")
                .and_then(Value::as_str),
            Some("pong")
        );

        // Then go quiet: the server must hang up on us, not the reverse.
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let mut buf = [0u8; 64];
        let n = stream.read(&mut buf).expect("clean EOF, not a timeout");
        assert_eq!(n, 0, "expected EOF from the idle reaper");
        assert_eq!(await_counter(addr, "idle_disconnects", 1), 1);

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn slow_clients_are_disconnected_when_the_outbox_overflows() {
        let (addr, handle, join) = start_server_with(|c| c.max_outbox_bytes = 4096);
        // Pipeline tens of thousands of stats requests and never read a
        // byte: replies (~15 MB total — beyond anything the kernel will
        // buffer for us) blow the backlog past the outbox cap and the
        // server cuts the connection loose. The disconnect may land while
        // we are still writing, so write errors here are success, not
        // failure.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut batch = String::new();
        for _ in 0..20_000 {
            batch.push_str("{\"type\":\"stats\"}\n");
        }
        let _ = stream.write_all(batch.as_bytes());
        assert_eq!(await_counter(addr, "slow_client_disconnects", 1), 1);

        drop(stream);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn connection_cap_closes_excess_connections() {
        let (addr, handle, join) = start_server_with(|c| c.max_connections = 2);
        let ping = |stream: &mut TcpStream| {
            stream.write_all(b"{\"type\":\"ping\"}\n").unwrap();
            let mut reply = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut reply)
                .unwrap();
            assert_eq!(
                parse(reply.trim())
                    .unwrap()
                    .get("type")
                    .and_then(Value::as_str),
                Some("pong")
            );
        };
        let mut first = TcpStream::connect(addr).unwrap();
        ping(&mut first);
        let mut second = TcpStream::connect(addr).unwrap();
        ping(&mut second);

        // The third connection is accepted and immediately closed — a
        // clean EOF, never a hang.
        let mut third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(third.read(&mut buf).unwrap_or(0), 0);

        // Closing one held connection frees the slot for a newcomer.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut retry = TcpStream::connect(addr).unwrap();
            retry
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            retry.write_all(b"{\"type\":\"ping\"}\n").unwrap();
            let mut reply = String::new();
            let n = BufReader::new(retry).read_line(&mut reply).unwrap_or(0);
            if n > 0 {
                assert_eq!(
                    parse(reply.trim())
                        .unwrap()
                        .get("type")
                        .and_then(Value::as_str),
                    Some("pong")
                );
                break;
            }
            assert!(Instant::now() < deadline, "slot never freed after close");
            thread::sleep(Duration::from_millis(100));
        }

        drop(second);
        handle.shutdown();
        join.join().unwrap();
    }
}
