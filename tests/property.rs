//! Property-based tests over randomly generated behavioral descriptions:
//!
//! * lowering always produces verifiable SSA;
//! * every transformation candidate is functionally equivalent to its
//!   source (the paper's correctness requirement, enforced for *every*
//!   thread of execution via randomized inputs);
//! * every generated behavior schedules into a valid STG with a finite
//!   average schedule length and positive energy.

use fact_ir::{BinOp, Function, UnOp};
use fact_lang::ast::{Expr, Proc, Stmt};
use fact_sim::{check_equivalence, generate, InputSpec, TraceSet};
use fact_xform::{Region, TransformLibrary};
use proptest::prelude::*;

const INPUTS: [&str; 3] = ["i0", "i1", "i2"];
const VARS: [&str; 3] = ["v0", "v1", "v2"];

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-20i64..20).prop_map(Expr::Int),
        (0usize..INPUTS.len()).prop_map(|i| Expr::Var(INPUTS[i].to_string())),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].to_string())),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Lt),
                    Just(BinOp::Eq),
                    Just(BinOp::And),
                    Just(BinOp::Xor),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner)
                .prop_map(|(op, a)| Expr::Un(op, Box::new(a))),
        ]
    })
}

/// Statements at a given nesting depth; loops use fresh counters indexed
/// by `depth` so generated programs always terminate.
fn stmts(depth: u32) -> BoxedStrategy<Vec<Stmt>> {
    let assign =
        (0usize..VARS.len(), expr()).prop_map(|(v, e)| Stmt::Assign(VARS[v].to_string(), e));
    if depth == 0 {
        proptest::collection::vec(assign, 1..4).boxed()
    } else {
        let nested_if = (expr(), stmts(depth - 1), stmts(depth - 1)).prop_map(
            |(cond, then_body, else_body)| Stmt::If {
                cond,
                then_body,
                else_body,
            },
        );
        let counter = format!("k{depth}");
        let bounded_loop = (1i64..6, stmts(depth - 1)).prop_map(move |(bound, body)| Stmt::For {
            init: Box::new(Stmt::Assign(counter.clone(), Expr::Int(0))),
            cond: Expr::bin(BinOp::Lt, Expr::Var(counter.clone()), Expr::Int(bound)),
            step: Box::new(Stmt::Assign(
                counter.clone(),
                Expr::bin(BinOp::Add, Expr::Var(counter.clone()), Expr::Int(1)),
            )),
            body,
        });
        proptest::collection::vec(
            prop_oneof![4 => assign, 1 => nested_if, 1 => bounded_loop],
            1..4,
        )
        .boxed()
    }
}

fn procs() -> impl Strategy<Value = Proc> {
    stmts(2).prop_map(|body| {
        let mut full = Vec::new();
        for (i, v) in VARS.iter().enumerate() {
            full.push(Stmt::VarDecl(
                v.to_string(),
                Expr::Var(INPUTS[i % INPUTS.len()].to_string()),
            ));
        }
        full.extend(body);
        for v in VARS {
            full.push(Stmt::Out(v.to_string(), Expr::Var(v.to_string())));
        }
        Proc {
            name: "rand".to_string(),
            inputs: INPUTS.iter().map(|s| s.to_string()).collect(),
            body: full,
        }
    })
}

fn traces(n: usize, seed: u64) -> TraceSet {
    let specs: Vec<(String, InputSpec)> = INPUTS
        .iter()
        .map(|i| (i.to_string(), InputSpec::Uniform { lo: -15, hi: 15 }))
        .collect();
    generate(&specs, n, seed)
}

fn lower_ok(p: &Proc) -> Function {
    let f = fact_lang::lower(p).expect("generated programs lower");
    fact_ir::verify::verify(&f).expect("lowering verifies");
    f
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lowering_always_verifies(p in procs()) {
        let f = lower_ok(&p);
        // Every generated behavior executes on random inputs.
        for v in &traces(5, 1).vectors {
            fact_sim::execute(&f, v).expect("generated programs execute");
        }
    }

    #[test]
    fn all_transformation_candidates_preserve_semantics(p in procs()) {
        let f = lower_ok(&p);
        let lib = TransformLibrary::full();
        let t = traces(24, 2);
        for cand in lib.all_candidates(&f, &Region::whole()).into_iter().take(12) {
            fact_ir::verify::verify(&cand.function)
                .unwrap_or_else(|e| panic!("{}: {e}\n{f}", cand.description));
            check_equivalence(&f, &cand.function, &t, 3)
                .unwrap_or_else(|m| panic!("{}: {m}\n== original\n{f}\n== candidate\n{}",
                    cand.description, cand.function));
        }
    }

    #[test]
    fn every_behavior_schedules_validly(p in procs()) {
        let f = lower_ok(&p);
        let (lib, rules) = fact_estim::section5_library();
        let mut alloc = fact_sched::Allocation::new();
        for name in ["a1", "sb1", "mt1", "cp1", "e1", "i1", "n1", "s1"] {
            alloc.set(lib.by_name(name).unwrap(), 2);
        }
        let prof = fact_sim::profile(&f, &traces(6, 3));
        let sr = fact_sched::schedule(
            &f, &lib, &rules, &alloc, &prof, &fact_sched::SchedOptions::default(),
        ).expect("generated programs schedule");
        sr.stg.validate().expect("valid STG");
        let est = fact_estim::evaluate(&sr, &lib, 25.0).expect("estimable");
        prop_assert!(est.average_schedule_length.is_finite());
        prop_assert!(est.average_schedule_length >= 1.0);
        prop_assert!(est.energy_vdd2 >= 0.0);
        prop_assert!(est.power >= 0.0);
    }
}
