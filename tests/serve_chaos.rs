//! Chaos suite: the `factd` daemon under seeded fault injection.
//!
//! Every test arms a deterministic [`fact_serve::FaultSpec`] and asserts
//! the daemon's failure contract: faults are contained to the job they
//! hit (documented error codes, no stuck clients, no leaked workers),
//! the non-faulted path is bit-identical to a clean run, and a corrupted
//! or torn cache snapshot still warm-starts the next server.

use fact_serve::{parse, FaultSpec, Server, ServerConfig, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Boots a server on an ephemeral port; `tweak` edits the quiet 2-worker
/// base config (faults, cache file, queue size, …) before bind.
fn start_server(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (SocketAddr, fact_serve::ServerHandle, thread::JoinHandle<()>) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: 120_000,
        cache_shards: 8,
        stats_interval_s: 0,
        log: false,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn roundtrip(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    parse(reply.trim()).expect("reply is one line of JSON")
}

/// The §5-style factorable job used across the suite.
fn job_line(id: &str, extra: &[(&'static str, Value)]) -> String {
    let source = "proc f(n, a, b) { var s = 0; var i = 0; \
         while (i < n) { var t = s + 1; s = t * a + t * b; i = i + 1; } out s = s; }";
    let alloc = Value::object([
        ("a1", Value::Int(2)),
        ("mt1", Value::Int(1)),
        ("cp1", Value::Int(1)),
        ("i1", Value::Int(2)),
        ("sb1", Value::Int(1)),
    ]);
    let traces = Value::object([
        ("n", Value::Int(4)),
        ("seed", Value::Int(7)),
        (
            "inputs",
            Value::object([
                ("n", Value::object([("const", Value::Int(10))])),
                ("a", Value::object([("const", Value::Int(2))])),
                ("b", Value::object([("const", Value::Int(3))])),
            ]),
        ),
    ]);
    let mut req = vec![
        ("type", Value::Str("optimize".into())),
        ("id", Value::Str(id.into())),
        ("source", Value::Str(source.into())),
        ("alloc", alloc),
        ("traces", traces),
        (
            "search",
            Value::object([("max_evaluations", Value::Int(60))]),
        ),
    ];
    req.extend(extra.iter().cloned());
    Value::object(req).to_json()
}

fn stat(stats: &Value, key: &str) -> i64 {
    stats
        .get(key)
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("stats missing {key}: {}", stats.to_json()))
}

#[test]
fn injected_eval_panics_fail_only_their_jobs() {
    // The first two evaluations panic inside the per-job catch; every
    // later job must be untouched and the workers must survive.
    let (addr, handle, join) = start_server(|c| {
        c.faults = FaultSpec::parse("seed=11,panic=1:2").unwrap();
    });
    for i in 0..2 {
        let reply = roundtrip(addr, &job_line(&format!("boom{i}"), &[]));
        assert_eq!(
            reply.get("error").and_then(Value::as_str),
            Some("internal"),
            "job boom{i}: {}",
            reply.to_json()
        );
        assert!(reply
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"));
    }
    for i in 0..2 {
        let reply = roundtrip(addr, &job_line(&format!("fine{i}"), &[]));
        assert_eq!(
            reply.get("status").and_then(Value::as_str),
            Some("ok"),
            "job fine{i}: {}",
            reply.to_json()
        );
    }
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stat(&stats, "jobs_panicked"), 2);
    assert_eq!(stat(&stats, "jobs_failed"), 2);
    assert_eq!(stat(&stats, "workers_respawned"), 0, "panic was contained");
    assert_eq!(stat(&stats, "jobs_completed"), 2);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn worker_kills_are_survived_by_respawn() {
    // The first two dequeues panic *outside* the per-job catch: the
    // worker dies holding the job. The client must get the documented
    // `internal` reply (dropped sender), the supervisor must respawn the
    // worker, and later jobs must run normally.
    let (addr, handle, join) = start_server(|c| {
        c.workers = 1;
        c.faults = FaultSpec::parse("seed=5,kill=1:2").unwrap();
    });
    for i in 0..2 {
        let reply = roundtrip(addr, &job_line(&format!("killed{i}"), &[]));
        assert_eq!(
            reply.get("error").and_then(Value::as_str),
            Some("internal"),
            "job killed{i}: {}",
            reply.to_json()
        );
        assert!(reply
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("worker exited"));
    }
    let reply = roundtrip(addr, &job_line("after", &[]));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stat(&stats, "workers_respawned"), 2);
    assert_eq!(stat(&stats, "jobs_completed"), 1);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn slow_evaluations_still_respect_deadlines() {
    // A 2 s injected stall against a 100 ms budget: the deadline fires,
    // the cancel flag is raised, and the reply arrives as soon as the
    // stalled job reaches its next cancellation check — well inside the
    // wind-down grace, never hanging the client.
    let (addr, handle, join) = start_server(|c| {
        c.workers = 1;
        c.faults = FaultSpec::parse("seed=3,slow=1:1,slow_ms=2000").unwrap();
    });
    let started = Instant::now();
    let reply = roundtrip(
        addr,
        &job_line("stalled", &[("timeout_ms", Value::Int(100))]),
    );
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(9), "reply took {elapsed:?}");
    match reply.get("type").and_then(Value::as_str) {
        Some("result") => {
            assert_eq!(reply.get("status").and_then(Value::as_str), Some("timeout"));
        }
        Some("error") => {
            assert_eq!(reply.get("error").and_then(Value::as_str), Some("timeout"));
        }
        other => panic!("unexpected reply type {other:?}: {}", reply.to_json()),
    }
    // The stall is spent; an unfaulted job completes normally.
    let reply = roundtrip(addr, &job_line("after", &[]));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn interrupted_and_short_writes_never_tear_replies() {
    // 90% of TCP writes fault (alternating Interrupted errors and short
    // writes). `write_all` on the reply path must absorb all of it:
    // every reply still arrives as one complete, parseable JSON line.
    let (addr, handle, join) = start_server(|c| {
        c.faults = FaultSpec::parse("seed=17,io=0.9").unwrap();
    });
    for i in 0..10 {
        let pong = roundtrip(addr, r#"{"type":"ping"}"#);
        assert_eq!(
            pong.get("type").and_then(Value::as_str),
            Some("pong"),
            "ping {i}"
        );
    }
    // A result reply is hundreds of bytes — many faulted writes deep.
    let reply = roundtrip(addr, &job_line("chunky", &[]));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stat(&stats, "jobs_completed"), 1);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn overload_sheds_low_priority_first_with_retry_hints() {
    // One worker stalled 3 s by an injected delay, queue of one slot:
    // a low-priority job parks in the queue, a high-priority job evicts
    // it (`shed` + retry_after_ms), and with the slot full again an
    // equal-priority job bounces (`busy` + retry_after_ms). Nobody
    // hangs; the survivors complete.
    let (addr, handle, join) = start_server(|c| {
        c.workers = 1;
        c.queue_capacity = 1;
        c.faults = FaultSpec::parse("seed=23,slow=1:1,slow_ms=3000").unwrap();
    });
    // Occupies the lone worker (stalled in the injected delay).
    let blocker = {
        let line = job_line("blocker", &[]);
        thread::spawn(move || roundtrip(addr, &line))
    };
    thread::sleep(Duration::from_millis(500));
    // Parks in the queue at priority 0.
    let low = {
        let line = job_line("low", &[("priority", Value::Int(0))]);
        thread::spawn(move || roundtrip(addr, &line))
    };
    thread::sleep(Duration::from_millis(500));
    // Evicts `low` from the full queue.
    let high = {
        let line = job_line("high", &[("priority", Value::Int(5))]);
        thread::spawn(move || roundtrip(addr, &line))
    };
    let shed = low.join().unwrap();
    assert_eq!(
        shed.get("error").and_then(Value::as_str),
        Some("shed"),
        "low-priority job: {}",
        shed.to_json()
    );
    let hint = shed.get("retry_after_ms").and_then(Value::as_i64).unwrap();
    assert!((10..=60_000).contains(&hint), "retry hint {hint}");
    // Queue full with the priority-5 job: an equal-priority newcomer
    // cannot shed it and bounces with backpressure plus the same hint.
    let busy = roundtrip(addr, &job_line("equal", &[("priority", Value::Int(5))]));
    assert_eq!(
        busy.get("error").and_then(Value::as_str),
        Some("busy"),
        "equal-priority job: {}",
        busy.to_json()
    );
    assert!(busy.get("retry_after_ms").and_then(Value::as_i64).is_some());

    for (name, client) in [("blocker", blocker), ("high", high)] {
        let reply = client.join().unwrap();
        assert_eq!(
            reply.get("status").and_then(Value::as_str),
            Some("ok"),
            "job {name}: {}",
            reply.to_json()
        );
    }
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert_eq!(stat(&stats, "jobs_shed"), 1);
    assert_eq!(stat(&stats, "jobs_rejected"), 1);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn unfaulted_jobs_are_bit_identical_to_a_clean_run() {
    // With faults armed but capped, the job that is *not* hit must
    // produce byte-for-byte the reply of a server with no faults at all
    // — injection must not perturb the deterministic search.
    let (clean_addr, clean_handle, clean_join) = start_server(|_| {});
    let (chaos_addr, chaos_handle, chaos_join) = start_server(|c| {
        c.workers = 1;
        c.faults = FaultSpec::parse("seed=29,panic=1:1").unwrap();
    });
    let clean = roundtrip(clean_addr, &job_line("same", &[]));

    let sacrificial = roundtrip(chaos_addr, &job_line("victim", &[]));
    assert_eq!(
        sacrificial.get("error").and_then(Value::as_str),
        Some("internal")
    );
    let survivor = roundtrip(chaos_addr, &job_line("same", &[]));
    assert_eq!(
        survivor.to_json(),
        clean.to_json(),
        "the unfaulted reply must match the clean run byte for byte"
    );

    clean_handle.shutdown();
    chaos_handle.shutdown();
    clean_join.join().unwrap();
    chaos_join.join().unwrap();
}

/// Self-cleaning temp path for snapshot files.
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        TempPath(std::env::temp_dir().join(format!("fact-chaos-{tag}-{}.snap", std::process::id())))
    }
    fn s(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("snap.tmp"));
    }
}

/// Runs one job against a fresh server using `path` as the cache file,
/// returning (reply, stats) after a clean shutdown (which snapshots).
fn run_with_cache_file(path: &str, faults: FaultSpec) -> (Value, Value) {
    let (addr, handle, join) = start_server(|c| {
        c.cache_file = Some(path.to_string());
        c.faults = faults;
    });
    let reply = roundtrip(addr, &job_line("snap", &[]));
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    handle.shutdown();
    join.join().unwrap();
    (reply, stats)
}

#[test]
fn corrupted_snapshot_still_warm_starts_the_next_server() {
    let file = TempPath::new("corrupt");
    // First life: run a job, shut down. The shutdown snapshot is then
    // hit by an injected tail corruption.
    let (reply, stats) =
        run_with_cache_file(&file.s(), FaultSpec::parse("seed=41,corrupt=1:1").unwrap());
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(stat(&stats, "cache_warm_entries"), 0, "first life is cold");

    // Second life: the corrupt tail is truncated away at load; the
    // surviving prefix warm-starts the cache and the resubmitted job is
    // answered (at least partly) from it.
    let (addr, handle, join) = start_server(|c| {
        c.cache_file = Some(file.s());
    });
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    let warm = stat(&stats, "cache_warm_entries");
    assert!(warm > 0, "warm start expected: {}", stats.to_json());
    let reply = roundtrip(addr, &job_line("snap", &[]));
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));
    let hits = reply.get("cache_hits").and_then(Value::as_i64).unwrap();
    assert!(hits > 0, "resubmitted job must hit the warm cache");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn torn_tail_and_stale_tmp_do_not_block_restart() {
    let file = TempPath::new("torn");
    let (reply, _) = run_with_cache_file(&file.s(), FaultSpec::default());
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("ok"));

    // Simulate a kill -9 mid-snapshot: a half-written record appended
    // to the live file plus a stale half-written tmp file next to it
    // (the atomic rename never happened).
    let mut bytes = std::fs::read(&file.0).unwrap();
    let intact = bytes.len();
    bytes.extend_from_slice(&[0x1d, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&file.0, &bytes).unwrap();
    std::fs::write(
        fact_core::snapshot_tmp_path(&file.0),
        b"half-written garbage",
    )
    .unwrap();

    let (addr, handle, join) = start_server(|c| {
        c.cache_file = Some(file.s());
    });
    let stats = roundtrip(addr, r#"{"type":"stats"}"#);
    assert!(
        stat(&stats, "cache_warm_entries") > 0,
        "torn tail must not cost the valid prefix: {}",
        stats.to_json()
    );
    let reply = roundtrip(addr, &job_line("snap", &[]));
    assert!(reply.get("cache_hits").and_then(Value::as_i64).unwrap() > 0);
    handle.shutdown();
    join.join().unwrap();

    // The load truncated the torn tail and the shutdown snapshot
    // rewrote the file through the stale tmp path without complaint.
    let after = std::fs::read(&file.0).unwrap();
    assert!(after.len() >= intact, "snapshot must be whole again");
}
