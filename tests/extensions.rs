//! End-to-end tests of the extension transformations (CSE and loop
//! distribution) through the full FACT pipeline with
//! `TransformLibrary::extended()`.

use fact_core::{optimize, FactConfig, Objective, SearchConfig, TransformLibrary};
use fact_estim::section5_library;
use fact_sched::Allocation;
use fact_sim::{check_equivalence, generate, InputSpec};

fn quick() -> FactConfig {
    FactConfig {
        objective: Objective::Throughput,
        search: SearchConfig {
            max_moves: 2,
            in_set_size: 2,
            max_rounds: 3,
            max_evaluations: 80,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn fission_plus_concurrency_beats_the_fused_loop() {
    // A fused loop whose two halves contend for one shared recurrence
    // resource class each: fissioned and run as concurrent phases, both
    // proceed at full rate. The multiplier chain (23ns) and the adder
    // chain (10ns) serialize when fused (RecMII spans both), but run in
    // parallel phases after distribution.
    let src = r#"
        proc fused(n, a, b) {
            array x[128];
            array y[128];
            var i = 0;
            while (i < n) {
                x[i] = (a * i) * 3;
                y[i] = b + i + b;
                i = i + 1;
            }
        }
    "#;
    let f = fact_lang::compile(src).unwrap();
    let (lib, rules) = section5_library();
    let mut alloc = Allocation::new();
    for (u, c) in [("a1", 2), ("mt1", 1), ("cp1", 2), ("i1", 2), ("sb1", 1)] {
        alloc.set(lib.by_name(u).unwrap(), c);
    }
    let traces = generate(
        &[
            ("n".to_string(), InputSpec::Constant(40)),
            ("a".to_string(), InputSpec::Uniform { lo: 0, hi: 5 }),
            ("b".to_string(), InputSpec::Uniform { lo: 0, hi: 5 }),
        ],
        4,
        77,
    );
    let r = optimize(
        &f,
        &lib,
        &rules,
        &alloc,
        &traces,
        &TransformLibrary::extended(),
        &quick(),
    )
    .unwrap();
    check_equivalence(&f, &r.best, &traces, 9).unwrap();
    // The extended library must never regress.
    assert!(r.estimate.average_schedule_length <= r.baseline.average_schedule_length + 1e-6);
}

#[test]
fn cse_improves_duplicated_datapath() {
    // The repeated (a*b) costs an extra multiplier issue slot every
    // iteration; CSE removes it.
    let src = r#"
        proc dup(n, a, b) {
            var s = 0;
            var i = 0;
            while (i < n) {
                s = s + (a * b) + (a * b);
                i = i + 1;
            }
            out s = s;
        }
    "#;
    let f = fact_lang::compile(src).unwrap();
    let (lib, rules) = section5_library();
    let mut alloc = Allocation::new();
    for (u, c) in [("a1", 2), ("mt1", 1), ("cp1", 1), ("i1", 1)] {
        alloc.set(lib.by_name(u).unwrap(), c);
    }
    let traces = generate(
        &[
            ("n".to_string(), InputSpec::Constant(30)),
            ("a".to_string(), InputSpec::Uniform { lo: 0, hi: 9 }),
            ("b".to_string(), InputSpec::Uniform { lo: 0, hi: 9 }),
        ],
        4,
        78,
    );
    let extended = optimize(
        &f,
        &lib,
        &rules,
        &alloc,
        &traces,
        &TransformLibrary::extended(),
        &quick(),
    )
    .unwrap();
    check_equivalence(&f, &extended.best, &traces, 10).unwrap();
    // Either CSE or LICM fires here (a*b is also loop-invariant); both
    // reach a shorter schedule than the untouched loop.
    assert!(
        extended.estimate.average_schedule_length < extended.baseline.average_schedule_length,
        "{} vs {}",
        extended.estimate.average_schedule_length,
        extended.baseline.average_schedule_length
    );
}

#[test]
fn extended_library_output_is_equivalent_on_the_suite() {
    // Running the extended library over the paper suite must stay
    // functionally equivalent and never regress the baseline.
    let (lib, rules) = section5_library();
    for b in fact_core::suite(&lib) {
        let r = optimize(
            &b.function,
            &lib,
            &rules,
            &b.allocation,
            &b.traces,
            &TransformLibrary::extended(),
            &quick(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        check_equivalence(&b.function, &r.best, &b.traces, 11)
            .unwrap_or_else(|m| panic!("{}: {m}", b.name));
        assert!(
            r.estimate.average_schedule_length <= r.baseline.average_schedule_length + 1e-6,
            "{}",
            b.name
        );
    }
}
